"""Stateful property testing of the accumulator contract.

A hypothesis ``RuleBasedStateMachine`` drives random interleavings of
``set_allowed`` / ``insert`` / ``remove`` / ``reset`` against a dict-based
model; MSA and Hash must stay bisimilar to the model (and hence to each
other) under *every* reachable interleaving — much stronger than the
example-based tests in test_accumulators.py.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.accumulators import (
    ALLOWED,
    MSA,
    NOTALLOWED,
    SET,
    HashAccumulator,
    HashComplement,
    MSAComplement,
)

KEYS = st.integers(0, 11)
VALS = st.floats(-8, 8, allow_nan=False, allow_infinity=False, width=32)

ADD = lambda x, y: x + y  # noqa: E731


class MaskedAccumulatorMachine(RuleBasedStateMachine):
    """Model: `allowed` set + `values` dict keyed by allowed/inserted keys."""

    def __init__(self):
        super().__init__()
        self.msa = MSA(12, ADD)
        self.hash = HashAccumulator(12, ADD)
        self.allowed = set()
        self.values = {}

    @rule(key=KEYS)
    def allow(self, key):
        self.msa.set_allowed(key)
        self.hash.set_allowed(key)
        self.allowed.add(key)

    @rule(key=KEYS, val=VALS)
    def insert(self, key, val):
        self.msa.insert(key, float(val))
        self.hash.insert(key, float(val))
        if key in self.allowed:
            self.values[key] = self.values.get(key, 0.0) + float(val)

    @rule(key=KEYS)
    def remove(self, key):
        got_msa = self.msa.remove(key)
        got_hash = self.hash.remove(key)
        want = self.values.pop(key, None)
        self.allowed.discard(key)
        if want is None:
            assert got_msa is None
            assert got_hash is None
        else:
            assert got_msa is not None and got_hash is not None
            assert abs(got_msa - want) < 1e-6
            assert abs(got_hash - want) < 1e-6

    @rule()
    def reset(self):
        self.msa.reset()
        self.hash.reset()
        self.allowed.clear()
        self.values.clear()

    @invariant()
    def msa_states_consistent(self):
        """MSA's dense state array must mirror the model exactly."""
        for key in range(12):
            st_ = self.msa.states[key]
            if key in self.values:
                assert st_ == SET
            elif key in self.allowed:
                assert st_ == ALLOWED
            else:
                assert st_ == NOTALLOWED


MaskedAccumulatorMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestMaskedAccumulatorMachine = MaskedAccumulatorMachine.TestCase


class ComplementAccumulatorMachine(RuleBasedStateMachine):
    """Same bisimulation for the complement variants (default ALLOWED)."""

    def __init__(self):
        super().__init__()
        self.msa = MSAComplement(12, ADD)
        self.hash = HashComplement(12, ADD)
        self.not_allowed = set()
        self.values = {}

    @rule(key=KEYS)
    def forbid(self, key):
        self.msa.set_not_allowed(key)
        self.hash.set_not_allowed(key)
        # contract: marking only affects keys in the default (ALLOWED)
        # state — a SET key keeps its accumulated value (the automaton has
        # no SET -> NOTALLOWED edge)
        if key not in self.values:
            self.not_allowed.add(key)

    @rule(key=KEYS, val=VALS)
    def insert(self, key, val):
        self.msa.insert(key, float(val))
        self.hash.insert(key, float(val))
        if key not in self.not_allowed or key in self.values:
            self.values[key] = self.values.get(key, 0.0) + float(val)

    @rule(key=KEYS)
    def remove(self, key):
        got_msa = self.msa.remove(key)
        got_hash = self.hash.remove(key)
        want = self.values.pop(key, None)
        # contract: REMOVE restores the default state (ALLOWED here), so a
        # prior NOTALLOWED mark does not survive a remove of a SET key
        if want is not None:
            self.not_allowed.discard(key)
        if want is None:
            assert got_msa is None
            assert got_hash is None
        else:
            assert got_msa is not None and got_hash is not None
            assert abs(got_msa - want) < 1e-6
            assert abs(got_hash - want) < 1e-6

    @rule()
    def reset(self):
        self.msa.reset()
        self.hash.reset()
        self.not_allowed.clear()
        self.values.clear()


ComplementAccumulatorMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestComplementAccumulatorMachine = ComplementAccumulatorMachine.TestCase
