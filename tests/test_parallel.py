"""Tests for row partitioners and the parallel masked-SpGEMM driver."""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.machine import OpCounter
from repro.parallel import (
    balanced_partition,
    block_partition,
    chunk_schedule,
    cyclic_partition,
    parallel_masked_spgemm,
    pool_size,
)
from repro.parallel.executor import row_block, row_slice

from .conftest import assert_csr_equal, random_csr


def _check_partition(parts, n):
    """Every row appears exactly once across parts."""
    all_rows = np.concatenate([p for p in parts]) if parts else np.array([])
    assert sorted(all_rows.tolist()) == list(range(n))


class TestPartitioners:
    @pytest.mark.parametrize("n,p", [(10, 3), (100, 7), (5, 8), (0, 2), (64, 1)])
    def test_block_covers_all(self, n, p):
        parts = block_partition(n, p)
        assert len(parts) == p
        _check_partition(parts, n)

    @pytest.mark.parametrize("n,p", [(10, 3), (100, 7), (5, 8), (64, 1)])
    def test_cyclic_covers_all(self, n, p):
        parts = cyclic_partition(n, p)
        _check_partition(parts, n)
        # strided assignment
        if n > p:
            assert parts[0][1] - parts[0][0] == p

    def test_balanced_covers_all(self):
        w = np.random.default_rng(0).random(97)
        parts = balanced_partition(w, 5)
        _check_partition(parts, 97)

    def test_balanced_actually_balances(self):
        # one heavy prefix: balanced splits must not put everything in part 0
        w = np.zeros(100)
        w[:10] = 100.0
        w[10:] = 1.0
        parts = balanced_partition(w, 5)
        sums = [w[p].sum() for p in parts]
        assert max(sums) < 0.5 * w.sum()

    def test_balanced_contiguous(self):
        w = np.random.default_rng(1).random(50)
        for p in balanced_partition(w, 4):
            if p.size > 1:
                assert np.all(np.diff(p) == 1)

    def test_balanced_zero_weights(self):
        parts = balanced_partition(np.zeros(10), 3)
        _check_partition(parts, 10)

    def test_chunk_schedule(self):
        chunks = chunk_schedule(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        with pytest.raises(ValueError):
            chunk_schedule(10, 0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            cyclic_partition(10, -1)
        with pytest.raises(ValueError):
            balanced_partition(np.ones(4), 0)


class TestRowSlice:
    """row_slice must agree with select_rows and take the contiguous fast
    path (views, not copies) for range partitions."""

    def test_contiguous_matches_select_rows(self):
        a = random_csr(30, 20, 4, seed=71)
        for lo, hi in [(0, 30), (0, 1), (5, 12), (29, 30), (7, 7)]:
            rows = np.arange(lo, hi, dtype=np.int64)
            got = row_slice(a, rows)
            want = a.select_rows(rows)
            assert got.shape == want.shape
            assert np.array_equal(got.indptr, want.indptr)
            assert np.array_equal(got.indices, want.indices)
            assert np.array_equal(got.data, want.data)

    def test_contiguous_fast_path_shares_buffers(self):
        a = random_csr(30, 20, 4, seed=72)
        rows = np.arange(5, 15, dtype=np.int64)
        sliced = row_slice(a, rows)
        # views into the parent's arrays, not copies
        assert sliced.indices.base is not None
        assert np.shares_memory(sliced.indices, a.indices)
        assert np.shares_memory(sliced.data, a.data)

    def test_scattered_falls_back(self):
        a = random_csr(30, 20, 4, seed=73)
        rows = np.array([2, 9, 3, 17], dtype=np.int64)  # unsorted, gappy
        got = row_slice(a, rows)
        want = a.select_rows(rows)
        assert np.array_equal(got.indptr, want.indptr)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.data, want.data)

    def test_strided_not_treated_as_contiguous(self):
        a = random_csr(24, 16, 3, seed=74)
        rows = np.arange(0, 24, 2, dtype=np.int64)  # cyclic partition shape
        got = row_slice(a, rows)
        want = a.select_rows(rows)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.data, want.data)

    def test_empty_rows(self):
        a = random_csr(10, 8, 2, seed=75)
        got = row_slice(a, np.array([], dtype=np.int64))
        assert got.shape == a.shape and got.nnz == 0

    def test_full_range_returns_same_matrix(self):
        # the degenerate one-partition case must not copy anything
        a = random_csr(20, 12, 3, seed=76)
        assert row_slice(a, np.arange(20, dtype=np.int64)) is a

    def test_scattered_rows_round_trip_select_rows(self):
        # scattered row sets (cyclic partitions, planner bands) must agree
        # with select_rows for every framing, including unsorted orders and
        # singleton sets
        a = random_csr(40, 25, 5, seed=77)
        for rows in (
            np.array([31, 4, 22, 17], dtype=np.int64),
            np.array([0, 39], dtype=np.int64),
            np.array([13], dtype=np.int64),
            np.arange(1, 40, 3, dtype=np.int64),
        ):
            got = row_slice(a, rows)
            want = a.select_rows(rows)
            assert got.shape == want.shape
            assert np.array_equal(got.indptr, want.indptr)
            assert np.array_equal(got.indices, want.indices)
            assert np.array_equal(got.data, want.data)


class TestRowBlock:
    """row_block is the compact (hi-lo)-row slice the partitioned executor
    uses internally: O(block) indptr work instead of O(nrows)."""

    def test_matches_select_rows_after_offset(self):
        a = random_csr(30, 20, 4, seed=81)
        for lo, hi in [(0, 30), (0, 1), (5, 12), (29, 30)]:
            got = row_block(a, lo, hi)
            want = a.select_rows(np.arange(lo, hi, dtype=np.int64))
            assert got.shape == (hi - lo, 20)
            r, c, v = got.to_coo()
            wr, wc, wv = want.to_coo()
            assert np.array_equal(r + lo, wr)
            assert np.array_equal(c, wc)
            assert np.array_equal(v, wv)

    def test_indptr_cost_is_block_local(self):
        a = random_csr(1000, 10, 2, seed=82)
        got = row_block(a, 500, 510)
        assert got.indptr.shape[0] == 11  # hi - lo + 1, not nrows + 1
        assert np.shares_memory(got.indices, a.indices)
        assert np.shares_memory(got.data, a.data)


class TestThreadsOneFastPath:
    def test_threads_must_be_positive(self, small_triple):
        a, b, m = small_triple
        for bad in (0, -1, -7):
            with pytest.raises(ValueError, match="threads"):
                parallel_masked_spgemm(a, b, m, threads=bad)

    def test_single_thread_builds_no_pool(self, small_triple):
        # threads=1 must fall back to the serial path without standing up
        # any worker pool (process or thread)
        from repro.parallel import shutdown_pool

        shutdown_pool()
        a, b, m = small_triple
        got = parallel_masked_spgemm(a, b, m, threads=1)
        assert pool_size() == 0
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m))


class TestParallelDriver:
    @pytest.mark.parametrize("partition", ["block", "cyclic", "balanced"])
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_matches_oracle(self, partition, backend, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = parallel_masked_spgemm(
            a, b, m, threads=4, partition=partition, backend=backend
        )
        assert_csr_equal(got, want)

    @pytest.mark.parametrize("algo", ["msa", "hash", "mca", "inner"])
    def test_all_fast_algos(self, algo, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = parallel_masked_spgemm(a, b, m, algo=algo, threads=3)
        assert_csr_equal(got, want)

    def test_complement(self, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m, complement=True)
        got = parallel_masked_spgemm(a, b, m, threads=4, complement=True)
        assert_csr_equal(got, want)

    def test_more_threads_than_rows(self):
        a = random_csr(3, 5, 2, seed=61)
        b = random_csr(5, 4, 2, seed=62)
        m = random_csr(3, 4, 2, seed=63)
        got = parallel_masked_spgemm(a, b, m, threads=16)
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m))

    def test_single_thread(self, small_triple):
        a, b, m = small_triple
        got = parallel_masked_spgemm(a, b, m, threads=1)
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m))

    def test_counter_merged_across_workers(self, small_triple):
        a, b, m = small_triple
        serial = OpCounter()
        parallel_masked_spgemm(a, b, m, threads=1, counter=serial)
        merged = OpCounter()
        parallel_masked_spgemm(a, b, m, threads=4, counter=merged)
        # work decomposition must not change the total useful flops
        assert merged.flops == serial.flops
        assert merged.output_nnz == serial.output_nnz

    def test_deterministic_regardless_of_threads(self, small_triple):
        a, b, m = small_triple
        r1 = parallel_masked_spgemm(a, b, m, threads=1)
        r4 = parallel_masked_spgemm(a, b, m, threads=4, partition="cyclic")
        assert r1.equals(r4)

    def test_validation(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="threads"):
            parallel_masked_spgemm(a, b, m, threads=0)
        with pytest.raises(ValueError, match="backend"):
            parallel_masked_spgemm(a, b, m, backend="mpi")
        with pytest.raises(ValueError, match="partition"):
            parallel_masked_spgemm(a, b, m, partition="magic")
