"""Tests for row partitioners and the parallel masked-SpGEMM driver."""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.machine import OpCounter
from repro.parallel import (
    balanced_partition,
    block_partition,
    chunk_schedule,
    cyclic_partition,
    parallel_masked_spgemm,
)

from .conftest import assert_csr_equal, random_csr


def _check_partition(parts, n):
    """Every row appears exactly once across parts."""
    all_rows = np.concatenate([p for p in parts]) if parts else np.array([])
    assert sorted(all_rows.tolist()) == list(range(n))


class TestPartitioners:
    @pytest.mark.parametrize("n,p", [(10, 3), (100, 7), (5, 8), (0, 2), (64, 1)])
    def test_block_covers_all(self, n, p):
        parts = block_partition(n, p)
        assert len(parts) == p
        _check_partition(parts, n)

    @pytest.mark.parametrize("n,p", [(10, 3), (100, 7), (5, 8), (64, 1)])
    def test_cyclic_covers_all(self, n, p):
        parts = cyclic_partition(n, p)
        _check_partition(parts, n)
        # strided assignment
        if n > p:
            assert parts[0][1] - parts[0][0] == p

    def test_balanced_covers_all(self):
        w = np.random.default_rng(0).random(97)
        parts = balanced_partition(w, 5)
        _check_partition(parts, 97)

    def test_balanced_actually_balances(self):
        # one heavy prefix: balanced splits must not put everything in part 0
        w = np.zeros(100)
        w[:10] = 100.0
        w[10:] = 1.0
        parts = balanced_partition(w, 5)
        sums = [w[p].sum() for p in parts]
        assert max(sums) < 0.5 * w.sum()

    def test_balanced_contiguous(self):
        w = np.random.default_rng(1).random(50)
        for p in balanced_partition(w, 4):
            if p.size > 1:
                assert np.all(np.diff(p) == 1)

    def test_balanced_zero_weights(self):
        parts = balanced_partition(np.zeros(10), 3)
        _check_partition(parts, 10)

    def test_chunk_schedule(self):
        chunks = chunk_schedule(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        with pytest.raises(ValueError):
            chunk_schedule(10, 0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            cyclic_partition(10, -1)
        with pytest.raises(ValueError):
            balanced_partition(np.ones(4), 0)


class TestParallelDriver:
    @pytest.mark.parametrize("partition", ["block", "cyclic", "balanced"])
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_matches_oracle(self, partition, backend, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = parallel_masked_spgemm(
            a, b, m, threads=4, partition=partition, backend=backend
        )
        assert_csr_equal(got, want)

    @pytest.mark.parametrize("algo", ["msa", "hash", "mca", "inner"])
    def test_all_fast_algos(self, algo, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = parallel_masked_spgemm(a, b, m, algo=algo, threads=3)
        assert_csr_equal(got, want)

    def test_complement(self, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m, complement=True)
        got = parallel_masked_spgemm(a, b, m, threads=4, complement=True)
        assert_csr_equal(got, want)

    def test_more_threads_than_rows(self):
        a = random_csr(3, 5, 2, seed=61)
        b = random_csr(5, 4, 2, seed=62)
        m = random_csr(3, 4, 2, seed=63)
        got = parallel_masked_spgemm(a, b, m, threads=16)
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m))

    def test_single_thread(self, small_triple):
        a, b, m = small_triple
        got = parallel_masked_spgemm(a, b, m, threads=1)
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m))

    def test_counter_merged_across_workers(self, small_triple):
        a, b, m = small_triple
        serial = OpCounter()
        parallel_masked_spgemm(a, b, m, threads=1, counter=serial)
        merged = OpCounter()
        parallel_masked_spgemm(a, b, m, threads=4, counter=merged)
        # work decomposition must not change the total useful flops
        assert merged.flops == serial.flops
        assert merged.output_nnz == serial.output_nnz

    def test_deterministic_regardless_of_threads(self, small_triple):
        a, b, m = small_triple
        r1 = parallel_masked_spgemm(a, b, m, threads=1)
        r4 = parallel_masked_spgemm(a, b, m, threads=4, partition="cyclic")
        assert r1.equals(r4)

    def test_validation(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="threads"):
            parallel_masked_spgemm(a, b, m, threads=0)
        with pytest.raises(ValueError, match="backend"):
            parallel_masked_spgemm(a, b, m, backend="mpi")
        with pytest.raises(ValueError, match="partition"):
            parallel_masked_spgemm(a, b, m, partition="magic")
