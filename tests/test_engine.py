"""Tests for the cost-model execution engine (:mod:`repro.engine`).

Covers plan construction and validation, the Figure-7 regime-aware auto
selection, property-style cross-checks of every plan shape the Planner can
emit against the reference implementation, complemented-mask safety, and
counter threading through banded / partitioned / panelled execution.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.core import (
    ALL_ALGOS,
    classify_rows,
    masked_spgemm,
    masked_spgemm_hybrid,
    supports_complement,
)
from repro.core.reference import masked_spgemm_reference
from repro.engine import (
    PLAN_CANDIDATES,
    ExecutionPlan,
    Planner,
    RowBand,
    execute,
    plan,
    plan_and_execute,
)
from repro.graphs import erdos_renyi, rmat
from repro.machine import HASWELL, KNL, OpCounter
from repro.semiring import PLUS_PAIR
from repro.sparse import CSR, read_mtx

from .conftest import assert_csr_equal, random_csr

DATA = Path(__file__).parent.parent / "data"


@pytest.fixture
def triple():
    a = random_csr(40, 30, 4, seed=1)
    b = random_csr(30, 50, 4, seed=2)
    m = random_csr(40, 50, 6, seed=3)
    return a, b, m


# ----------------------------------------------------------------------
# plan construction
# ----------------------------------------------------------------------
class TestPlanner:
    def test_auto_plan_covers_all_rows(self, triple):
        a, b, m = triple
        pl = plan(a, b, m)
        assert pl.mode == "auto"
        covered = np.concatenate([band.rows for band in pl.bands])
        assert sorted(covered.tolist()) == list(range(a.nrows))
        pl.validate()  # internal consistency

    def test_forced_plan_single_band(self, triple):
        a, b, m = triple
        pl = plan(a, b, m, algo="hash", phases=2, threads=3, partition="cyclic")
        assert pl.mode == "forced"
        assert pl.algo == "hash"
        assert pl.phases == 2 and pl.threads == 3 and pl.partition == "cyclic"
        assert len(pl.bands) == 1 and pl.bands[0].is_full(a.nrows)

    def test_forced_unknown_algo(self, triple):
        a, b, m = triple
        with pytest.raises(ValueError, match="unknown algorithm"):
            plan(a, b, m, algo="quantum")

    def test_forced_complement_unsupported(self, triple):
        a, b, m = triple
        for algo in ("inner", "mca"):
            with pytest.raises(ValueError, match="complement"):
                plan(a, b, m, algo=algo, complement=True)

    def test_shape_validation(self):
        a = random_csr(5, 6, 2, seed=1)
        b = random_csr(7, 4, 2, seed=2)
        m = random_csr(5, 4, 2, seed=3)
        with pytest.raises(ValueError, match="inner dimensions"):
            plan(a, b, m)
        b2 = random_csr(6, 4, 2, seed=4)
        with pytest.raises(ValueError, match="mask shape"):
            plan(a, b2, random_csr(4, 4, 2, seed=5))

    def test_explain_reports_choices(self, triple):
        a, b, m = triple
        text = plan(a, b, m).explain()
        assert "algo=" in text
        assert "phases=" in text
        assert "partition" in text
        assert HASWELL.name in text

    def test_as_dict_jsonable(self, triple):
        a, b, m = triple
        d = plan(a, b, m, memory_budget_bytes=10_000).as_dict()
        json.dumps(d)  # must not raise
        assert d["machine"] == "haswell"
        assert sum(band["nrows"] for band in d["bands"]) == a.nrows

    def test_machine_changes_estimates(self, triple):
        a, b, m = triple
        ph = plan(a, b, m, machine=HASWELL)
        pk = plan(a, b, m, machine=KNL)
        assert ph.machine == "haswell" and pk.machine == "knl"
        assert ph.estimates != pk.estimates

    def test_ratio_banding_matches_classify_rows(self, triple):
        a, b, m = triple
        pl = Planner(HASWELL, banding="ratio").plan(a, b, m)
        classes = classify_rows(a, b, m, HASWELL)
        got = {band.algo: set(band.rows.tolist()) for band in pl.bands}
        want = {algo: set(rows.tolist()) for algo, rows in classes.items()}
        assert got == want

    def test_banding_none_single_band(self, triple):
        a, b, m = triple
        pl = Planner(HASWELL, banding="none").plan(a, b, m)
        assert len(pl.bands) == 1 and pl.bands[0].is_full(a.nrows)

    def test_memory_budget_turns_on_panels(self):
        a = random_csr(60, 60, 6, seed=11)
        b = random_csr(60, 200, 6, seed=12)
        m = random_csr(60, 200, 8, seed=13)
        tight = plan(a, b, m, memory_budget_bytes=2_000)
        assert tight.panel_width is not None and 0 < tight.panel_width < b.ncols
        roomy = plan(a, b, m, memory_budget_bytes=1 << 30)
        assert roomy.panel_width is None

    def test_invalid_inputs(self, triple):
        a, b, m = triple
        with pytest.raises(ValueError, match="banding"):
            Planner(HASWELL, banding="vibes")
        with pytest.raises(ValueError, match="phases"):
            plan(a, b, m, phases=3)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            plan(a, b, m, memory_budget_bytes=0)

    def test_plan_validate_catches_broken_plans(self, triple):
        a, b, m = triple
        rows = np.arange(a.nrows, dtype=np.int64)
        with pytest.raises(ValueError, match="unknown algorithm"):
            ExecutionPlan((a.nrows, b.ncols),
                          [RowBand(rows, "quantum")]).validate()
        with pytest.raises(ValueError, match="exactly once"):
            ExecutionPlan((a.nrows, b.ncols),
                          [RowBand(rows, "msa"), RowBand(rows[:1], "hash")]).validate()
        with pytest.raises(ValueError, match="complement"):
            ExecutionPlan((a.nrows, b.ncols), [RowBand(rows, "mca")],
                          complement=True).validate()
        with pytest.raises(ValueError, match="partition"):
            ExecutionPlan((a.nrows, b.ncols), [RowBand(rows, "msa")],
                          partition="magic").validate()

    def test_complement_plans_never_use_inner_or_mca(self):
        """The regimes that would pick inner/mca must fall back elsewhere
        when the mask is complemented (neither supports complement)."""
        n = 128
        dense = erdos_renyi(n, n, 16, seed=1)
        sparse = erdos_renyi(n, n, 1, seed=2)
        cases = [
            (dense, dense, sparse),   # pull regime -> would pick inner
            (sparse, sparse, dense),  # push-compact regime -> would pick mca
        ]
        for banding in ("cost", "ratio", "none"):
            planner = Planner(HASWELL, banding=banding)
            for a, b, m in cases:
                pl = planner.plan(a, b, m, complement=True)
                assert not set(pl.algos()) & {"inner", "mca"}, (banding, pl.algos())


# ----------------------------------------------------------------------
# Figure-7 auto selection
# ----------------------------------------------------------------------
class TestAutoSelection:
    def test_density_grid_selects_multiple_algorithms(self):
        """Paper Fig. 7 via the planner: sweeping input/mask density must
        produce at least three distinct algorithm choices."""
        n = 512
        degrees = (1, 4, 16, 64)
        chosen = set()
        for d_in in degrees:
            a = erdos_renyi(n, n, d_in, seed=d_in)
            b = erdos_renyi(n, n, d_in, seed=d_in + 1000)
            for d_m in degrees:
                m = erdos_renyi(n, n, d_m, seed=d_m + 2000)
                per_algo = plan(a, b, m).nrows_per_algo()
                chosen.add(max(per_algo, key=per_algo.get))
        assert len(chosen) >= 3, chosen
        assert chosen <= set(PLAN_CANDIDATES)

    def test_grid_execution_matches_reference_bitwise(self):
        """Every auto plan on a small density grid produces the same
        pattern AND the same values as the reference implementation
        (PLUS_PAIR values are whole counts, so equality is exact)."""
        n = 96
        for d_in, d_m in [(1, 1), (1, 16), (8, 8), (24, 2), (2, 24)]:
            a = erdos_renyi(n, n, d_in, seed=d_in)
            b = erdos_renyi(n, n, d_in, seed=d_in + 50)
            m = erdos_renyi(n, n, d_m, seed=d_m + 99)
            pl = plan(a, b, m)
            got = execute(pl, a, b, m, semiring=PLUS_PAIR).sort_indices()
            want = masked_spgemm_reference(
                a, b, m, algo="msa", semiring=PLUS_PAIR
            ).sort_indices()
            assert got.shape == want.shape
            assert np.array_equal(got.indptr, want.indptr), (d_in, d_m)
            assert np.array_equal(got.indices, want.indices), (d_in, d_m)
            assert np.array_equal(got.data, want.data), (d_in, d_m)

    def test_auto_entry_point(self, triple):
        a, b, m = triple
        want = scipy_masked_spgemm(a, b, m)
        assert_csr_equal(masked_spgemm(a, b, m, algo="auto"), want)
        wantc = scipy_masked_spgemm(a, b, m, complement=True)
        assert_csr_equal(
            masked_spgemm(a, b, m, algo="auto", complement=True), wantc
        )

    def test_auto_respects_forced_phases(self, triple):
        a, b, m = triple
        pl = plan(a, b, m, phases=2)
        assert pl.phases == 2
        assert_csr_equal(
            execute(pl, a, b, m), scipy_masked_spgemm(a, b, m)
        )


# ----------------------------------------------------------------------
# property-style cross-checks: every plan shape vs the reference
# ----------------------------------------------------------------------
def _inputs():
    """karate + small ER / R-MAT problems (square: a @ a masked by a)."""
    karate = read_mtx(DATA / "karate.mtx")
    er = erdos_renyi(48, 48, 3, seed=7, values="uniform")
    rm = rmat(6, seed=3)  # 64 vertices, Graph500 parameters
    return [("karate", karate), ("er", er), ("rmat", rm)]


@pytest.fixture(scope="module", params=_inputs(), ids=lambda p: p[0])
def square_problem(request):
    g = request.param[1]
    return g, g, g


class TestPlanCrossCheck:
    """Every plan the Planner can emit must match the reference kernels."""

    @pytest.mark.parametrize("complement", [False, True])
    @pytest.mark.parametrize("algo", ALL_ALGOS)
    def test_forced_algos(self, algo, complement, square_problem):
        a, b, m = square_problem
        if complement and not supports_complement(algo):
            pytest.skip(f"{algo} has no complement support")
        pl = plan(a, b, m, algo=algo, complement=complement)
        got = execute(pl, a, b, m)
        want = masked_spgemm_reference(a, b, m, algo="msa", complement=complement)
        assert_csr_equal(got, want, msg=f"algo={algo} complement={complement}")

    @pytest.mark.parametrize("phases", [1, 2])
    @pytest.mark.parametrize("banding", ["cost", "ratio", "none"])
    def test_auto_bandings(self, banding, phases, square_problem):
        a, b, m = square_problem
        pl = Planner(HASWELL, banding=banding).plan(a, b, m, phases=phases)
        got = execute(pl, a, b, m)
        want = masked_spgemm_reference(a, b, m, algo="msa")
        assert_csr_equal(got, want, msg=f"banding={banding} phases={phases}")

    @pytest.mark.parametrize("partition", ["block", "cyclic", "balanced"])
    def test_partitioned(self, partition, square_problem):
        a, b, m = square_problem
        pl = plan(a, b, m, threads=3, partition=partition)
        got = execute(pl, a, b, m)
        want = masked_spgemm_reference(a, b, m, algo="msa")
        assert_csr_equal(got, want, msg=f"partition={partition}")

    @pytest.mark.parametrize("panel", [5, 17])
    def test_panelled(self, panel, square_problem):
        a, b, m = square_problem
        for complement in (False, True):
            pl = plan(a, b, m, panel_width=panel, complement=complement)
            got = execute(pl, a, b, m)
            want = masked_spgemm_reference(a, b, m, algo="msa",
                                           complement=complement)
            assert_csr_equal(got, want, msg=f"panel={panel} c={complement}")

    def test_threads_times_panels_times_bands(self, square_problem):
        """The maximally-composed plan: banded + partitioned + panelled."""
        a, b, m = square_problem
        pl = plan(a, b, m, threads=2, panel_width=11)
        got = execute(pl, a, b, m)
        assert_csr_equal(got, masked_spgemm_reference(a, b, m, algo="msa"))

    def test_machines(self, square_problem):
        a, b, m = square_problem
        for machine in (HASWELL, KNL):
            got = plan_and_execute(a, b, m, machine=machine)
            assert_csr_equal(got, masked_spgemm_reference(a, b, m, algo="msa"))

    def test_semirings(self, square_problem):
        a, b, m = square_problem
        got = plan_and_execute(a, b, m, semiring=PLUS_PAIR)
        want = masked_spgemm_reference(a, b, m, algo="msa", semiring=PLUS_PAIR)
        assert_csr_equal(got, want)


# ----------------------------------------------------------------------
# hybrid complement (satellite)
# ----------------------------------------------------------------------
class TestHybridComplement:
    def test_matches_oracle(self, triple):
        a, b, m = triple
        got = masked_spgemm_hybrid(a, b, m, complement=True)
        assert_csr_equal(got, scipy_masked_spgemm(a, b, m, complement=True))

    def test_classify_rows_complement_avoids_inner_mca(self):
        n = 128
        dense = erdos_renyi(n, n, 16, seed=1)
        sparse = erdos_renyi(n, n, 1, seed=2)
        # plain: these regimes route to inner / mca respectively
        assert "inner" in classify_rows(dense, dense, sparse)
        assert "mca" in classify_rows(sparse, sparse, dense)
        # complemented: they must not
        for a, b, m in [(dense, dense, sparse), (sparse, sparse, dense)]:
            classes = classify_rows(a, b, m, complement=True)
            assert not set(classes) & {"inner", "mca"}
            covered = np.concatenate(list(classes.values()))
            assert sorted(covered.tolist()) == list(range(n))

    def test_hybrid_complement_on_pull_regime(self):
        """Inputs whose plain-mask classification picks inner must still be
        complement-correct (routed away from inner)."""
        n = 96
        a = erdos_renyi(n, n, 12, seed=5)
        m = erdos_renyi(n, n, 1, seed=6)
        got = masked_spgemm_hybrid(a, a, m, complement=True)
        assert_csr_equal(got, scipy_masked_spgemm(a, a, m, complement=True))


# ----------------------------------------------------------------------
# counter threading
# ----------------------------------------------------------------------
class TestCounterThreading:
    def test_partitioned_counter_equals_serial(self, triple):
        a, b, m = triple
        serial, parallel = OpCounter(), OpCounter()
        execute(plan(a, b, m, algo="msa", threads=1), a, b, m, counter=serial)
        execute(plan(a, b, m, algo="msa", threads=4), a, b, m, counter=parallel)
        assert parallel.as_dict() == serial.as_dict()

    def test_banded_counter_counts_all_bands(self, triple):
        a, b, m = triple
        c = OpCounter()
        out = plan_and_execute(a, b, m, counter=c)
        assert c.output_nnz == out.nnz
        assert c.flops > 0

    def test_panelled_counter(self, triple):
        a, b, m = triple
        c = OpCounter()
        out = execute(plan(a, b, m, algo="hash", panel_width=9), a, b, m, counter=c)
        assert c.output_nnz == out.nnz

    def test_two_phase_symbolic_charged(self, triple):
        a, b, m = triple
        c = OpCounter()
        execute(plan(a, b, m, algo="msa", phases=2), a, b, m, counter=c)
        assert c.symbolic_flops > 0


# ----------------------------------------------------------------------
# the acceptance workloads: TC, k-truss, BC plans are explainable
# ----------------------------------------------------------------------
class TestWorkloadPlans:
    def _assert_explains(self, pl):
        text = pl.explain()
        assert "algo=" in text and "phases=" in text and "partition" in text
        return text

    def test_triangle_counting_plan(self):
        g = read_mtx(DATA / "karate.mtx")
        low = g.pattern().tril(-1)
        pl = plan(low, low, low)
        self._assert_explains(pl)
        got = execute(pl, low, low, low, semiring=PLUS_PAIR)
        from repro.sparse import reduce_sum

        assert int(round(reduce_sum(got))) == 45  # karate has 45 triangles

    def test_ktruss_plan(self):
        """k-truss support step: S = A .* (A @ A) on the adjacency pattern."""
        g = erdos_renyi(64, 64, 6, seed=9).pattern()
        pl = plan(g, g, g)
        self._assert_explains(pl)
        got = execute(pl, g, g, g, semiring=PLUS_PAIR)
        want = masked_spgemm_reference(g, g, g, algo="msa", semiring=PLUS_PAIR)
        assert_csr_equal(got, want)

    def test_bc_plan_complemented(self):
        g = erdos_renyi(80, 80, 4, seed=10).pattern()
        s = 8
        rows = np.arange(s, dtype=np.int64)
        frontier = CSR.from_coo((s, 80), rows, rows * 3, np.ones(s))
        pl = plan(frontier, g, frontier, complement=True)
        text = self._assert_explains(pl)
        assert "complemented" in text
        assert not set(pl.algos()) & {"inner", "mca"}

    def test_apps_run_on_auto_default(self):
        from repro.apps import triangle_count

        g = read_mtx(DATA / "karate.mtx")
        assert triangle_count(g) == 45  # default algo is now "auto"
