"""Counter consistency between the reference and fast tiers.

The machine model consumes operation profiles; if the two implementation
tiers disagreed about how much countable work an algorithm does, the model
would silently describe neither.  These tests pin the counters that are
tier-independent by definition:

* ``flops`` — useful (mask-surviving) multiplies: identical across tiers
  and across algorithms (every correct masked algorithm does exactly the
  useful work, given lazy INSERT semantics);
* ``accum_inserts`` — products offered to the accumulator: equals
  ``flops(AB)`` for the push algorithms in both tiers;
* ``output_nnz`` — identical everywhere.
"""

import numpy as np
import pytest

from repro.core import masked_spgemm
from repro.machine import OpCounter, total_flops, useful_flops_per_row

from .conftest import random_csr


@pytest.fixture(scope="module")
def triple():
    a = random_csr(60, 50, 5, seed=81)
    b = random_csr(50, 70, 5, seed=82)
    m = random_csr(60, 70, 8, seed=83)
    return a, b, m


PUSH_ACCUM_ALGOS = ["msa", "hash", "esc"]


class TestUsefulFlops:
    @pytest.mark.parametrize("algo", ["msa", "hash", "mca", "esc", "heap",
                                      "heapdot", "inner"])
    @pytest.mark.parametrize("impl", ["reference", "auto"])
    def test_flops_equal_exact_useful(self, algo, impl, triple):
        a, b, m = triple
        c = OpCounter()
        masked_spgemm(a, b, m, algo=algo, impl=impl, counter=c)
        assert c.flops == useful_flops_per_row(a, b, m).sum(), (algo, impl)

    @pytest.mark.parametrize("algo", PUSH_ACCUM_ALGOS)
    def test_inserts_equal_total_flops_both_tiers(self, algo, triple):
        a, b, m = triple
        for impl in ("reference", "auto"):
            c = OpCounter()
            masked_spgemm(a, b, m, algo=algo, impl=impl, counter=c)
            assert c.accum_inserts == total_flops(a, b), (algo, impl)

    @pytest.mark.parametrize("algo", ["msa", "hash", "mca", "inner", "esc"])
    def test_output_nnz_counter(self, algo, triple):
        a, b, m = triple
        c = OpCounter()
        out = masked_spgemm(a, b, m, algo=algo, impl="auto", counter=c)
        assert c.output_nnz == out.nnz


class TestMaskSavings:
    def test_sparser_mask_fewer_flops(self):
        a = random_csr(100, 100, 8, seed=84)
        b = random_csr(100, 100, 8, seed=85)
        flops = []
        for deg in (1, 4, 16, 64):
            m = random_csr(100, 100, deg, seed=86)
            c = OpCounter()
            masked_spgemm(a, b, m, algo="msa", counter=c)
            flops.append(c.flops)
        assert flops == sorted(flops)
        assert flops[0] < flops[-1]

    def test_complement_flops_are_the_complement(self, triple):
        """useful(M) + useful(!M) == flops(AB), measured by counters."""
        a, b, m = triple
        c_in, c_out = OpCounter(), OpCounter()
        masked_spgemm(a, b, m, algo="msa", counter=c_in)
        masked_spgemm(a, b, m, algo="msa", complement=True, counter=c_out)
        assert c_in.flops + c_out.flops == total_flops(a, b)


class TestHashProbeAccounting:
    def test_probe_counts_reasonable_both_tiers(self, triple):
        """At load factor 0.25, expected probes/op stay below 2 in both the
        scalar and the batched hash tables."""
        a, b, m = triple
        for impl in ("reference", "auto"):
            c = OpCounter()
            masked_spgemm(a, b, m, algo="hash", impl=impl, counter=c)
            ops = c.accum_allowed + c.accum_inserts + c.accum_removes
            assert c.hash_probes >= 1
            assert c.hash_probes <= 2.5 * max(1, ops), impl


class TestSchemaGrowth:
    """Counters cross process and file boundaries (worker pickles, the
    benchmark history's stored dicts); an older payload must stay readable
    after the field list grows."""

    class _OldCounter:
        """Stand-in for a counter pickled before new fields existed."""

        def __init__(self, **kw):
            for k, v in kw.items():
                setattr(self, k, v)

    def test_merge_tolerates_missing_fields(self):
        c = OpCounter(flops=3, hash_probes=2)
        c.merge(self._OldCounter(flops=5))
        assert c.flops == 8
        assert c.hash_probes == 2  # absent on the old producer: merged as 0

    def test_diff_tolerates_short_snapshot(self):
        c = OpCounter(flops=7, output_nnz=4)
        short = (3,)  # snapshot taken when only `flops` existed
        d = c.diff(short)
        assert d["flops"] == 4
        assert d["output_nnz"] == 4  # missing trailing fields read as 0

    def test_diff_none_means_since_zero(self):
        c = OpCounter(flops=2)
        assert c.diff(None) == {"flops": 2}

    def test_from_dict_ignores_unknown_keys(self):
        payload = {"flops": 9, "a_future_counter": 123}
        c = OpCounter.from_dict(payload)
        assert c.flops == 9
        assert not hasattr(c, "a_future_counter")

    def test_from_dict_roundtrip(self):
        c = OpCounter(flops=1, mask_scans=5, output_nnz=2)
        assert OpCounter.from_dict(c.as_dict()).as_dict() == c.as_dict()
