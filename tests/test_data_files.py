"""Tests over the bundled real-world data (Zachary's karate club)."""

from pathlib import Path

import numpy as np
import pytest

from repro.apps import (
    betweenness_centrality,
    connected_components,
    ktruss,
    triangle_count,
)
from repro.sparse import read_mtx

DATA = Path(__file__).parent.parent / "data"


@pytest.fixture(scope="module")
def karate():
    return read_mtx(DATA / "karate.mtx")


class TestKarateClub:
    """Ground truths for Zachary's karate club are textbook facts."""

    def test_shape(self, karate):
        assert karate.shape == (34, 34)
        assert karate.nnz == 2 * 78  # 78 undirected edges

    def test_symmetric(self, karate):
        assert karate.equals(karate.transpose())

    def test_triangles(self, karate):
        assert triangle_count(karate) == 45

    def test_connected(self, karate):
        res = connected_components(karate)
        assert res.n_components == 1

    def test_hubs(self, karate):
        """The instructor (0) and the president (33) are the two highest-
        degree vertices."""
        deg = karate.row_nnz()
        top2 = set(np.argsort(deg)[-2:].tolist())
        assert top2 == {0, 33}

    def test_betweenness_hubs(self, karate):
        res = betweenness_centrality(karate, sources=range(34))
        top = int(np.argmax(res.centrality))
        assert top in (0, 33)

    def test_ktruss(self, karate):
        import networkx as nx

        res = ktruss(karate, 4)
        want = nx.k_truss(nx.karate_club_graph(), 4)
        assert res.truss.nnz // 2 == want.number_of_edges()
