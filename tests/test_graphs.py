"""Unit tests for the graph/matrix generators."""

import numpy as np
import pytest

from repro.graphs import (
    GRAPH500_EDGE_FACTOR,
    GRAPH500_PARAMS,
    bipartite_like,
    block_diagonal_dense,
    degree_sort_permutation,
    erdos_renyi,
    erdos_renyi_graph,
    grid2d,
    grid3d,
    load,
    load_all,
    path_like_road,
    power_law,
    relabel_by_degree,
    rmat,
    small_world,
    suite_names,
)
from repro.sparse import CSR


def _is_symmetric(m: CSR) -> bool:
    return m.equals(m.transpose())


def _zero_diag(m: CSR) -> bool:
    rows, cols, _ = m.to_coo()
    return not np.any(rows == cols)


class TestErdosRenyi:
    def test_shape_and_density(self):
        m = erdos_renyi(1000, 800, 5, seed=1)
        assert m.shape == (1000, 800)
        # dedup only removes a tiny fraction at this density
        assert 0.9 * 5000 <= m.nnz <= 5000

    def test_deterministic_by_seed(self):
        a = erdos_renyi(100, 100, 4, seed=7)
        b = erdos_renyi(100, 100, 4, seed=7)
        c = erdos_renyi(100, 100, 4, seed=8)
        assert a.equals(b)
        assert not a.equals(c)

    def test_zero_degree(self):
        assert erdos_renyi(10, 10, 0, seed=1).nnz == 0

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 10, -1)

    def test_values_ones(self):
        m = erdos_renyi(50, 50, 3, seed=2, values="ones")
        assert np.array_equal(m.data, np.ones(m.nnz))

    def test_graph_symmetric_no_diag(self):
        g = erdos_renyi_graph(200, 6, seed=3)
        assert _is_symmetric(g)
        assert _zero_diag(g)

    def test_graph_asymmetric_option(self):
        g = erdos_renyi_graph(100, 4, seed=4, symmetric=False)
        assert _zero_diag(g)


class TestRmat:
    def test_graph500_params(self):
        assert GRAPH500_PARAMS == (0.57, 0.19, 0.19, 0.05)
        assert GRAPH500_EDGE_FACTOR == 16

    def test_size(self):
        g = rmat(8, seed=1)
        assert g.shape == (256, 256)
        # edge factor 16 before dedup/self-loop removal & symmetrisation
        assert g.nnz <= 2 * 16 * 256
        assert g.nnz > 256

    def test_symmetric_pattern(self):
        g = rmat(7, seed=2)
        assert _is_symmetric(g)
        assert _zero_diag(g)
        assert np.array_equal(g.data, np.ones(g.nnz))

    def test_skewed_degrees(self):
        """R-MAT with Graph500 params is heavy-tailed: max degree far above
        the mean (unlike ER)."""
        g = rmat(10, seed=3)
        deg = g.row_nnz()
        assert deg.max() > 5 * deg.mean()

    def test_deterministic(self):
        assert rmat(6, seed=9).equals(rmat(6, seed=9))

    def test_param_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat(5, params=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError, match="scale"):
            rmat(0)


class TestStructuredGenerators:
    def test_grid2d_degree_bounds(self):
        g = grid2d(10)
        assert g.shape == (100, 100)
        assert _is_symmetric(g)
        deg = g.row_nnz()
        assert deg.max() <= 4
        assert deg.min() >= 2

    def test_grid2d_diagonal(self):
        g = grid2d(10, diagonal=True)
        assert g.row_nnz().max() <= 8

    def test_grid3d(self):
        g = grid3d(5)
        assert g.shape == (125, 125)
        assert _is_symmetric(g)
        assert g.row_nnz().max() <= 6

    def test_road_low_degree(self):
        g = path_like_road(2000, seed=1)
        assert _is_symmetric(g)
        assert g.row_nnz().mean() < 4

    def test_small_world(self):
        g = small_world(500, k=6, p=0.1, seed=1)
        assert _is_symmetric(g)
        assert _zero_diag(g)
        assert g.row_nnz().mean() > 3

    def test_power_law_heavy_tail(self):
        g = power_law(2000, 16000, seed=1)
        deg = g.row_nnz()
        assert deg.max() > 8 * max(1.0, deg.mean())

    def test_block_diagonal_dense(self):
        g = block_diagonal_dense(4, 10, seed=1)
        assert g.shape == (40, 40)
        # no edges between different blocks
        rows, cols, _ = g.to_coo()
        assert np.all(rows // 10 == cols // 10)

    def test_bipartite(self):
        g = bipartite_like(50, 70, 4, seed=1)
        rows, cols, _ = g.to_coo()
        # every edge crosses the (50, 70) cut
        side_r = rows < 50
        side_c = cols < 50
        assert np.all(side_r != side_c)


class TestRelabel:
    def test_degree_sort_nonincreasing(self):
        g = rmat(8, seed=4)
        perm = degree_sort_permutation(g)
        deg = g.row_nnz()[perm]
        assert np.all(np.diff(deg) <= 0)

    def test_relabel_preserves_structure(self):
        g = erdos_renyi_graph(100, 5, seed=5)
        r = relabel_by_degree(g)
        assert r.nnz == g.nnz
        assert np.all(np.diff(r.row_nnz()) <= 0)
        # triangle count is permutation-invariant (checked in app tests too)
        assert _is_symmetric(r)

    def test_ascending_option(self):
        g = erdos_renyi_graph(60, 4, seed=6)
        r = relabel_by_degree(g, ascending=True)
        assert np.all(np.diff(r.row_nnz()) >= 0)


class TestSuite:
    def test_has_26_graphs(self):
        assert len(suite_names()) == 26

    def test_load_memoised(self):
        g1 = load("er-sparse-s")
        g2 = load("er-sparse-s")
        assert g1 is g2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("not-a-graph")

    def test_all_members_valid_graphs(self):
        for name, g in load_all(names=suite_names()[:6]).items():
            assert g.nrows == g.ncols, name
            assert _is_symmetric(g), name
            assert _zero_diag(g), name
            g.check()

    def test_nnz_spread(self):
        """The suite must span ~2 orders of magnitude in nnz (the axis the
        performance profiles need)."""
        sizes = [load(n).nnz for n in suite_names()]
        assert max(sizes) / min(sizes) > 30
