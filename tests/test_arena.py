"""Tests for the kernel scratch arena (repro.core.kernels.arena).

The arena's contract is subtle enough to pin down explicitly:

* a buffer at rest in the arena holds ``fill`` in every cell (the kernels'
  dirty-cell resets maintain this), so a cache hit needs no initialisation;
* an exception inside a lease discards the buffer — a crashed kernel can
  never poison a later call with a half-dirty accumulator;
* the kernels that use it (MSA / Hash / ESC fast paths) must produce
  identical results on reused buffers, including after a poisoning attempt.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.core import masked_spgemm
from repro.core.kernels import ScratchArena, arena_stats, clear_arena, get_arena

from .conftest import assert_csr_equal, random_csr


class TestScratchArena:
    def test_miss_then_hit(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, 0.0) as lease:
            buf = lease.require(100)
            assert buf.shape == (100,)
            assert np.all(buf == 0.0)
        assert arena.misses == 1
        with arena.lease("k", np.float64, 0.0) as lease:
            again = lease.require(100)
            assert np.shares_memory(again, buf)
        assert arena.hits == 1

    def test_fill_invariant_on_growth(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, 7.5) as lease:
            small = lease.require(10)
            assert np.all(small == 7.5)
            big = lease.require(1000)  # growth reallocates, refilled
            assert np.all(big == 7.5)

    def test_geometric_growth(self):
        arena = ScratchArena()
        with arena.lease("k", np.int64, 0) as lease:
            lease.require(100)
            lease.require(101)  # grows to max(101, 150)
            assert lease.array.shape[0] == 150

    def test_exception_discards_buffer(self):
        arena = ScratchArena()
        with pytest.raises(RuntimeError):
            with arena.lease("k", np.float64, 0.0) as lease:
                lease.require(50)[:] = 123.0  # dirty it
                raise RuntimeError("kernel died")
        assert arena.discarded == 1
        # next lease must miss and come back clean
        with arena.lease("k", np.float64, 0.0) as lease:
            assert np.all(lease.require(50) == 0.0)
        assert arena.misses == 2

    def test_dtype_change_does_not_alias(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, 0.0) as lease:
            lease.require(8)
        with arena.lease("k", np.bool_, False) as lease:
            buf = lease.require(8)
            assert buf.dtype == np.bool_
        assert arena.misses == 2

    def test_nested_lease_same_key_misses(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, 0.0) as outer:
            a = outer.require(10)
            with arena.lease("k", np.float64, 0.0) as inner:
                b = inner.require(10)
                assert not np.shares_memory(a, b)

    def test_fill_none_is_uninitialised(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, None) as lease:
            buf = lease.require(10)
            buf[:] = 3.0  # fully overwritten by contract; no reset needed
        with arena.lease("k", np.float64, None) as lease:
            assert lease.require(10).shape == (10,)

    def test_clear_and_stats(self):
        arena = ScratchArena()
        with arena.lease("k", np.float64, 0.0) as lease:
            lease.require(64)
        stats = arena.stats()
        assert stats["buffers"] == 1 and stats["nbytes"] == 64 * 8
        arena.clear()
        assert arena.stats()["buffers"] == 0

    def test_thread_local_arenas_are_distinct(self):
        seen = {}

        def grab(name):
            seen[name] = get_arena()

        t = threading.Thread(target=grab, args=("worker",))
        t.start()
        t.join()
        assert seen["worker"] is not get_arena()


class TestKernelsOnReusedBuffers:
    """The fast kernels must be call-order independent: repeated and
    interleaved invocations over the shared arena give identical results."""

    @pytest.fixture(autouse=True)
    def _fresh_arena(self):
        clear_arena()
        yield
        clear_arena()

    @pytest.mark.parametrize("algo", ["msa", "hash", "esc"])
    @pytest.mark.parametrize("complement", [False, True])
    def test_repeated_calls_identical(self, algo, complement):
        a = random_csr(40, 30, 4, seed=21)
        b = random_csr(30, 50, 4, seed=22)
        m = random_csr(40, 50, 6, seed=23)
        want = scipy_masked_spgemm(a, b, m, complement=complement)
        first = masked_spgemm(
            a, b, m, algo=algo, impl="fast", complement=complement
        )
        assert_csr_equal(first, want)
        for _ in range(3):  # now hitting warm buffers
            again = masked_spgemm(
                a, b, m, algo=algo, impl="fast", complement=complement
            )
            assert np.array_equal(again.indptr, first.indptr)
            assert np.array_equal(again.indices, first.indices)
            assert np.array_equal(again.data, first.data)
        stats = arena_stats()
        assert stats["hits"] > 0

    def test_interleaved_algos_and_sizes(self):
        triples = [
            (random_csr(12, 9, 2, seed=s), random_csr(9, 15, 3, seed=s + 1),
             random_csr(12, 15, 4, seed=s + 2))
            for s in (31, 41)
        ] + [
            (random_csr(60, 45, 5, seed=51), random_csr(45, 30, 4, seed=52),
             random_csr(60, 30, 6, seed=53))
        ]
        for _ in range(2):
            for a, b, m in triples:
                for algo in ("msa", "hash", "esc"):
                    got = masked_spgemm(a, b, m, algo=algo, impl="fast")
                    assert_csr_equal(got, scipy_masked_spgemm(a, b, m))

    def test_failed_call_does_not_poison_next(self):
        a = random_csr(20, 20, 3, seed=61)
        m = random_csr(20, 20, 3, seed=62)
        masked_spgemm(a, a, m, algo="msa", impl="fast")  # warm the arena
        wrong = random_csr(7, 5, 2, seed=63)
        with pytest.raises(ValueError):
            masked_spgemm(a, wrong, m, algo="msa", impl="fast")
        got = masked_spgemm(a, a, m, algo="msa", impl="fast")
        assert_csr_equal(got, scipy_masked_spgemm(a, a, m))

    def test_nonzero_identity_semiring_buffers(self):
        # MIN_PLUS has +inf identity: its value buffers must not be shared
        # with PLUS_TIMES's zero-filled ones (fill is part of the key)
        from repro.semiring import MIN_PLUS

        a = random_csr(15, 15, 3, seed=71)
        m = random_csr(15, 15, 4, seed=72)
        plus = masked_spgemm(a, a, m, algo="msa", impl="fast")
        tropical = masked_spgemm(a, a, m, algo="msa", impl="fast", semiring=MIN_PLUS)
        plus2 = masked_spgemm(a, a, m, algo="msa", impl="fast")
        assert np.array_equal(plus.data, plus2.data)
        assert not np.array_equal(plus.data, tropical.data)
