"""Tests for the SS:GB baseline stand-ins and the hybrid (future-work)
dispatcher."""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm, scipy_spgemm, ssgb_dot, ssgb_saxpy
from repro.core import classify_rows, masked_spgemm, masked_spgemm_hybrid
from repro.graphs import erdos_renyi
from repro.machine import HASWELL, KNL, OpCounter
from repro.semiring import PLUS_PAIR
from repro.sparse import CSR

from .conftest import assert_csr_equal, random_csr


class TestScipyOracle:
    def test_plain(self, small_triple):
        a, b, _ = small_triple
        want = CSR.from_scipy((a.to_scipy() @ b.to_scipy()).tocsr())
        assert_csr_equal(scipy_spgemm(a, b), want)

    def test_masked_and_complement_partition(self, small_triple):
        a, b, m = small_triple
        inside = scipy_masked_spgemm(a, b, m)
        outside = scipy_masked_spgemm(a, b, m, complement=True)
        full = scipy_spgemm(a, b).drop_zeros(1e-14)
        assert inside.nnz + outside.nnz == full.nnz


class TestSSGBBaselines:
    @pytest.mark.parametrize("fn", [ssgb_dot, ssgb_saxpy], ids=["dot", "saxpy"])
    def test_plain_mask(self, fn, small_triple):
        a, b, m = small_triple
        assert_csr_equal(fn(a, b, m), scipy_masked_spgemm(a, b, m))

    @pytest.mark.parametrize("fn", [ssgb_dot, ssgb_saxpy], ids=["dot", "saxpy"])
    def test_complement(self, fn, small_triple):
        a, b, m = small_triple
        assert_csr_equal(
            fn(a, b, m, complement=True),
            scipy_masked_spgemm(a, b, m, complement=True),
        )

    def test_agree_with_our_kernels(self, small_triple):
        a, b, m = small_triple
        ours = masked_spgemm(a, b, m, algo="msa")
        assert_csr_equal(ssgb_dot(a, b, m), ours)
        assert_csr_equal(ssgb_saxpy(a, b, m), ours)

    def test_saxpy_pays_full_flops(self, small_triple):
        """SS:SAXPY's defining behaviour: it computes every product, mask or
        no mask — our masked kernels compute only the useful ones."""
        from repro.machine import total_flops

        a, b, m = small_triple
        c_saxpy, c_ours = OpCounter(), OpCounter()
        ssgb_saxpy(a, b, m, counter=c_saxpy)
        masked_spgemm(a, b, m, algo="msa", counter=c_ours, impl="reference")
        assert c_saxpy.flops == total_flops(a, b)
        assert c_ours.flops < c_saxpy.flops

    def test_semiring_support(self, small_triple):
        a, b, m = small_triple
        want = masked_spgemm(a, b, m, algo="msa", semiring=PLUS_PAIR)
        assert_csr_equal(ssgb_saxpy(a, b, m, semiring=PLUS_PAIR), want)
        assert_csr_equal(ssgb_dot(a, b, m, semiring=PLUS_PAIR), want)


class TestHybrid:
    def test_matches_oracle(self, small_triple):
        a, b, m = small_triple
        assert_csr_equal(masked_spgemm_hybrid(a, b, m), scipy_masked_spgemm(a, b, m))

    def test_classification_covers_all_rows(self, small_triple):
        a, b, m = small_triple
        classes = classify_rows(a, b, m)
        all_rows = np.concatenate(list(classes.values()))
        assert sorted(all_rows.tolist()) == list(range(a.nrows))

    def test_classification_regimes(self):
        n = 256
        # dense inputs + sparse mask rows -> inner rows exist
        a = erdos_renyi(n, n, 24, seed=1)
        b = erdos_renyi(n, n, 24, seed=2)
        m = erdos_renyi(n, n, 1, seed=3)
        classes = classify_rows(a, b, m)
        assert "inner" in classes and classes["inner"].size > n // 2
        # sparse inputs + dense mask -> mca rows exist
        a2 = erdos_renyi(n, n, 1, seed=4)
        m2 = erdos_renyi(n, n, 32, seed=5)
        classes2 = classify_rows(a2, a2, m2)
        assert "mca" in classes2 and classes2["mca"].size > 0

    def test_machine_dependent_accumulator(self):
        # MSA when the dense accumulator fits the private cache, hash when not
        n_small, n_big = 256, 1 << 18
        a = erdos_renyi(n_small, n_small, 4, seed=6)
        m = erdos_renyi(n_small, n_small, 4, seed=7)
        assert "msa" in classify_rows(a, a, m, HASWELL)
        a2 = erdos_renyi(n_big, n_big, 1, seed=8)
        m2 = erdos_renyi(n_big, n_big, 1, seed=9)
        classes = classify_rows(a2, a2, m2, HASWELL)
        assert "hash" in classes or "msa" not in classes

    def test_mixed_density_correctness(self):
        """A matrix with wildly different row regimes still multiplies
        correctly through the per-row dispatch."""
        n = 200
        rng = np.random.default_rng(0)
        rows, cols = [], []
        # half the rows dense, half nearly empty
        for i in range(n // 2):
            cs = rng.choice(n, size=30, replace=False)
            rows += [i] * 30
            cols += cs.tolist()
        for i in range(n // 2, n):
            rows.append(i)
            cols.append(int(rng.integers(n)))
        a = CSR.from_coo((n, n), np.array(rows), np.array(cols),
                         rng.random(len(rows)))
        m = erdos_renyi(n, n, 8, seed=10)
        assert_csr_equal(masked_spgemm_hybrid(a, a, m), scipy_masked_spgemm(a, a, m))

    def test_thresholds_exposed(self, small_triple):
        a, b, m = small_triple
        r1 = masked_spgemm_hybrid(a, b, m, pull_ratio=1.0, push_ratio=1.0)
        r2 = masked_spgemm_hybrid(a, b, m, pull_ratio=100.0, push_ratio=100.0)
        assert_csr_equal(r1, r2)  # thresholds change routing, not results

    def test_empty_inputs(self):
        out = masked_spgemm_hybrid(
            CSR.empty((5, 5)), CSR.empty((5, 5)), CSR.empty((5, 5))
        )
        assert out.nnz == 0
