"""Prediction ledger + machine-fit suite (``calibrate`` marker).

The modeled→measured loop, closed end to end:

1. Every executed unit leaves a prediction row — row bands on all three
   backends (sessioned or not), shard cells on the sharded path, bucket
   chunks on the batched tier, push/pull decisions in direction BFS —
   and every row pairs the plan's modeled cycles/bytes with the span's
   measured seconds and counter delta.
2. The counter deltas are bit-identical to the run's ``OpCounter``: the
   band spans partition exactly the work the run charged.
3. ``python -m repro.machine fit`` is deterministic for a fixed history,
   improves the held-out scheme over the default config, and the fitted
   config is bit-for-bit output-equivalent across serial/thread/process
   (a machine config changes *decisions*, never values).
4. The disabled path stays free: the bucketed tier through the traced
   wrapper is within the same 2% envelope ``tests/test_observe.py``
   enforces for the per-row tier.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.apps.direction_bfs import direction_optimized_bfs
from repro.bench.regress import main as regress_main
from repro.core import masked_spgemm
from repro.core.kernels.msa_kernel import masked_spgemm_msa_fast
from repro.engine import ExecutionSession
from repro.graphs import erdos_renyi, relabel_by_degree, rmat
from repro.machine import (
    HASWELL,
    MachineConfig,
    OpCounter,
    evaluate_config,
    fit_machine,
    load_fitted,
    load_fitted_payload,
    resolve_machine,
    samples_from_history,
    save_fitted,
)
from repro.machine.fit import _NON_WORK_COUNTERS, FITTED_PATH_ENV, MACHINE_ENV
from repro.observe import current, metrics, predictions, report, tracing
from repro.parallel import shutdown_pool
from repro.parallel.pool import process_backend_available
from repro.semiring import PLUS_PAIR, PLUS_TIMES

pytestmark = pytest.mark.calibrate

HISTORY_PATH = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_history.json")


def _triple(seed=1, n=60):
    a = erdos_renyi(n, n, 5, seed=seed, values="uniform")
    b = erdos_renyi(n, n, 5, seed=seed + 1, values="uniform")
    m = erdos_renyi(n, n, 8, seed=seed + 2)
    return a, b, m


def _tc_low(scale=8, seed=5):
    return relabel_by_degree(rmat(scale, seed=seed).pattern()).tril(-1)


@pytest.fixture(scope="module")
def committed_history():
    with open(HISTORY_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def fitted(committed_history):
    return fit_machine(committed_history, holdout="MCA-1P")


_BACKENDS = ["serial", "thread", "process"]


def _skip_unless_available(backend):
    if backend == "process" and not process_backend_available():
        pytest.skip("no shared-memory support")


# ----------------------------------------------------------------------
# 1. prediction rows exist for every executed unit, on every path
# ----------------------------------------------------------------------


class TestLedgerRows:
    @pytest.fixture(scope="class", autouse=True)
    def _pool_teardown(self):
        yield
        shutdown_pool()

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("use_session", [False, True])
    def test_band_rows_cover_every_executed_band(self, backend, use_session):
        _skip_unless_available(backend)
        a, b, m = _triple(seed=3)
        session = ExecutionSession() if use_session else None
        try:
            with tracing() as tr:
                masked_spgemm(a, b, m, algo="auto", backend=backend,
                              semiring=PLUS_TIMES, session=session)
        finally:
            if session is not None:
                session.close()
        band_spans = [sp for sp in tr.spans if sp.name == "engine.band"]
        assert band_spans, "an auto run must execute at least one band"
        rows = [r for r in predictions(tr)["rows"] if r["kind"] == "band"]
        assert len(rows) == len(band_spans)
        for row in rows:
            assert row["measured_seconds"] > 0.0
            assert row["counters"], "band rows must carry a counter delta"
            # the plan's machine name is recoverable from the trace, so
            # modeled cycles convert to seconds without an explicit machine
            assert row["modeled_seconds"] is not None
            assert row["attrs"]["backend"] == backend

    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_shard_cell_rows_with_apportioned_estimates(self, backend):
        _skip_unless_available(backend)
        low = _tc_low(scale=9, seed=1)
        with tracing() as tr:
            masked_spgemm(low, low, low, algo="msa", shards=(2, 2),
                          backend=backend, semiring=PLUS_PAIR)
        rows = [r for r in predictions(tr)["rows"]
                if r["kind"] == "shard-cell"]
        cell_spans = [sp for sp in tr.spans if sp.name == "parallel.shard"]
        assert rows and len(rows) == len(cell_spans)
        assert all(r["measured_seconds"] > 0.0 for r in rows)
        # forced-algo shard plans carry no cost sweep, so estimates may be
        # zero — but the keys must name distinct cells
        keys = {r["key"] for r in rows}
        assert len(keys) == len(rows)

    def test_sharded_auto_apportions_plan_totals(self):
        low = _tc_low(scale=9, seed=1)
        with tracing() as tr:
            masked_spgemm(low, low, low, algo="auto", shards=(2, 2),
                          backend="serial", semiring=PLUS_PAIR)
        rows = [r for r in predictions(tr)["rows"]
                if r["kind"] == "shard-cell"]
        assert rows
        assert sum(r["modeled_cycles"] for r in rows) > 0.0

    def test_bucket_rows_on_batched_tier(self):
        a, b, m = _triple(seed=7, n=120)
        with tracing() as tr:
            masked_spgemm(a, b, m, algo="msa", batch="bucket",
                          semiring=PLUS_TIMES)
        rows = [r for r in predictions(tr, machine=HASWELL)["rows"]
                if r["kind"] == "batch-bucket"]
        assert rows, "the bucketed tier must emit kernel.bucket rows"
        for row in rows:
            assert row["measured_seconds"] > 0.0
            assert row["attrs"]["bucket"] == int(row["key"].split(":")[1])

    def test_direction_rows_record_decision(self):
        g = rmat(8, seed=3).pattern()
        with tracing() as tr:
            direction_optimized_bfs(g, 0, machine="haswell")
        rows = [r for r in predictions(tr, machine=HASWELL)["rows"]
                if r["kind"] == "spmv-direction"]
        assert rows
        for row in rows:
            assert row["attrs"]["decision_source"] == "cost_model"
            assert row["attrs"]["direction"] in ("push", "pull")
            assert 0.0 < row["attrs"]["frontier_density"] <= 1.0
            assert row["modeled_cycles"] > 0.0

    def test_counter_deltas_bit_identical_to_opcounter(self):
        a, b, m = _triple(seed=11)
        counter = OpCounter()
        with tracing() as tr:
            masked_spgemm(a, b, m, algo="auto", backend="serial",
                          semiring=PLUS_TIMES, counter=counter)
        rows = [r for r in predictions(tr)["rows"] if r["kind"] == "band"]
        summed: dict = {}
        for row in rows:
            for k, v in (row["counters"] or {}).items():
                summed[k] = summed.get(k, 0) + v
        want = {
            k: v for k, v in counter.as_dict().items()
            if v and k not in _NON_WORK_COUNTERS
        }
        summed = {k: v for k, v in summed.items()
                  if k not in _NON_WORK_COUNTERS}
        assert summed == want

    def test_metrics_and_report_surface_the_ledger(self):
        low = _tc_low(scale=8, seed=5)
        with tracing() as tr:
            masked_spgemm(low, low, low, algo="auto", backend="serial",
                          semiring=PLUS_PAIR, batch="bucket")
        mx = metrics(tr, machine=HASWELL)
        preds = mx["predictions"]
        assert preds["schema_version"] == 1
        assert any(r["kind"] == "band" for r in preds["rows"])
        assert "band" in preds["summary"]
        summary = preds["summary"]["band"]
        assert summary["rows"] >= 1
        assert summary["measured_seconds"] > 0.0
        assert summary["bias"] in ("optimistic", "pessimistic", "centered")
        # batch + shard census ride along in the same export
        assert mx["batch"]["rows_by_tier"]
        text = report(tr)
        assert "prediction ledger" in text
        assert "batch census" in text

    def test_empty_trace_has_empty_ledger(self):
        with tracing() as tr:
            pass
        preds = metrics(tr, machine=HASWELL)["predictions"]
        assert preds["rows"] == [] and preds["summary"] == {}


# ----------------------------------------------------------------------
# 2. the fit: deterministic, improving, loadable
# ----------------------------------------------------------------------


class TestFit:
    def test_fit_is_deterministic(self, committed_history, fitted):
        again = fit_machine(committed_history, holdout="MCA-1P")
        assert json.dumps(fitted.payload(), sort_keys=True) == json.dumps(
            again.payload(), sort_keys=True
        )

    def test_fit_improves_heldout_scheme(self, fitted):
        held = fitted.provenance["holdout"]
        assert held is not None and held["scheme"] == "MCA-1P"
        assert (held["fitted"]["median_abs_log10_ratio"]
                < held["default"]["median_abs_log10_ratio"]), (
            "the fitted config must beat the default on the held-out scheme"
        )

    def test_fit_reduces_residual_vs_default(self, committed_history,
                                             fitted):
        samples = samples_from_history(committed_history)
        fit_err = evaluate_config(fitted.machine, samples)
        base_err = evaluate_config(HASWELL, samples)
        assert (fit_err["median_abs_log10_ratio"]
                < base_err["median_abs_log10_ratio"])

    def test_provenance_carries_env_and_counts(self, fitted):
        prov = fitted.provenance
        assert prov["base"] == HASWELL.name
        assert prov["samples"] > 0
        assert prov["params_fitted"]
        assert "python" in prov["env"]

    def test_save_load_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "fitted.json"
        save_fitted(fitted, path)
        assert load_fitted(path) == fitted.machine
        payload = load_fitted_payload(path)
        assert payload["provenance"] == json.loads(
            json.dumps(fitted.provenance)
        )

    def test_resolve_machine_presets_and_fitted(self, fitted, tmp_path,
                                                monkeypatch):
        monkeypatch.delenv(MACHINE_ENV, raising=False)
        assert resolve_machine(None) is HASWELL
        assert resolve_machine(HASWELL) is HASWELL
        assert resolve_machine("haswell") is HASWELL
        monkeypatch.delenv(FITTED_PATH_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(FileNotFoundError):
            resolve_machine("fitted")
        path = tmp_path / "cal.json"
        save_fitted(fitted, path)
        monkeypatch.setenv(FITTED_PATH_ENV, str(path))
        got = resolve_machine("fitted")
        assert isinstance(got, MachineConfig)
        assert got == fitted.machine
        with pytest.raises(ValueError):
            resolve_machine("no-such-machine")

    def test_machine_env_sets_the_default(self, fitted, tmp_path,
                                          monkeypatch):
        """REPRO_MACHINE=fitted makes every machine-less call target the
        fitted config (the CI hook behind the calibrate job's equivalence
        re-run) — and results stay identical to the default config's."""
        from repro.engine import Planner

        path = tmp_path / "cal.json"
        save_fitted(fitted, path)
        # PLUS_PAIR sums exact integers, so the result is bitwise invariant
        # even when the fitted config picks different algorithms per band
        low = _tc_low(scale=8, seed=13)
        ref = masked_spgemm(low, low, low, algo="auto", semiring=PLUS_PAIR)
        monkeypatch.setenv(FITTED_PATH_ENV, str(path))
        monkeypatch.setenv(MACHINE_ENV, "fitted")
        assert Planner().machine == fitted.machine
        assert resolve_machine(None) == fitted.machine
        got = masked_spgemm(low, low, low, algo="auto", semiring=PLUS_PAIR)
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)

    def test_fit_cli_writes_deterministic_payload(self, tmp_path):
        import subprocess
        import sys

        out1 = tmp_path / "a.json"
        out2 = tmp_path / "b.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(HISTORY_PATH), "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        for out in (out1, out2):
            res = subprocess.run(
                [sys.executable, "-m", "repro.machine", "fit",
                 "--history", HISTORY_PATH, "--out", str(out)],
                capture_output=True, text=True, env=env,
            )
            assert res.returncode == 0, res.stderr
            assert "held-out" in res.stdout
        assert out1.read_text() == out2.read_text()


# ----------------------------------------------------------------------
# 3. machine="fitted" changes decisions, never values
# ----------------------------------------------------------------------


class TestFittedEquivalence:
    @pytest.fixture(scope="class", autouse=True)
    def _pool_teardown(self):
        yield
        shutdown_pool()

    @pytest.fixture()
    def fitted_env(self, fitted, tmp_path, monkeypatch):
        path = tmp_path / "fitted.json"
        save_fitted(fitted, path)
        monkeypatch.setenv(FITTED_PATH_ENV, str(path))
        return path

    def test_outputs_bit_for_bit_across_backends(self, fitted_env):
        low = _tc_low(scale=9, seed=7)
        results = {}
        for backend in _BACKENDS:
            if backend == "process" and not process_backend_available():
                continue
            results[backend] = masked_spgemm(
                low, low, low, algo="auto", backend=backend,
                machine="fitted", semiring=PLUS_PAIR,
            )
        ref = masked_spgemm(low, low, low, algo="auto", backend="serial",
                            semiring=PLUS_PAIR)
        for backend, got in results.items():
            assert np.array_equal(got.indptr, ref.indptr), backend
            assert np.array_equal(got.indices, ref.indices), backend
            assert np.array_equal(got.data, ref.data), backend

    def test_fitted_session_equivalence(self, fitted_env):
        # PLUS_PAIR: exact integer sums, bitwise invariant to plan changes
        low = _tc_low(scale=8, seed=21)
        with ExecutionSession(machine="fitted") as sess:
            got = masked_spgemm(low, low, low, algo="auto",
                                semiring=PLUS_PAIR, session=sess)
            assert sess.machine.name == "fitted"
        ref = masked_spgemm(low, low, low, algo="auto", semiring=PLUS_PAIR)
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)

    def test_direction_bfs_fitted_same_levels(self, fitted_env):
        g = rmat(8, seed=9).pattern()
        ref = direction_optimized_bfs(g, 0)
        got = direction_optimized_bfs(g, 0, machine="fitted")
        assert np.array_equal(got.levels, ref.levels)
        assert got.depth == ref.depth


# ----------------------------------------------------------------------
# 4. regress verdict provenance + disabled-path overhead
# ----------------------------------------------------------------------


class TestIntegration:
    def test_regress_verdict_carries_fitted_provenance(
            self, fitted, tmp_path, monkeypatch):
        out = tmp_path / "verdict.json"
        monkeypatch.delenv(FITTED_PATH_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        rc = regress_main(["--baseline", HISTORY_PATH,
                           "--head", HISTORY_PATH,
                           "--json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert "fitted_machine" in doc and doc["fitted_machine"] is None

        cal = tmp_path / "cal.json"
        save_fitted(fitted, cal)
        monkeypatch.setenv(FITTED_PATH_ENV, str(cal))
        rc = regress_main(["--baseline", HISTORY_PATH,
                           "--head", HISTORY_PATH,
                           "--json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["fitted_machine"]["samples"] == fitted.provenance["samples"]

    def test_history_records_carry_prediction_summary(self):
        from repro.bench.history import collect_record
        from repro.bench.runner import scheme_by_name

        n = 96
        a = erdos_renyi(n, n, 4, seed=1, values="uniform")
        m = erdos_renyi(n, n, 6, seed=2)
        rec = collect_record(
            scheme_by_name("MSA-1P"), "tiny", [(a, a, m, False)], repeats=1
        )
        assert "predictions" in rec
        # explicit-algo scheme runs land kernel spans, not engine bands;
        # the summary may be empty but the key must exist and be a dict
        assert isinstance(rec["predictions"], dict)

    def test_bucket_tier_disabled_overhead_under_two_percent(self):
        """The instrumented ``bucket_batches`` untraced path: one global
        read per call, one branch per chunk (mirrors the per-row tier's
        2% + floor bound in tests/test_observe.py)."""
        a, b, m = _triple()
        bare = masked_spgemm_msa_fast.__wrapped__

        def run_wrapped():
            masked_spgemm_msa_fast(a, b, m, semiring=PLUS_TIMES,
                                   batch="bucket")

        def run_bare():
            bare(a, b, m, semiring=PLUS_TIMES, batch="bucket")

        run_wrapped()
        run_bare()

        def timed(fn, calls=20):
            t0 = time.perf_counter()
            for _ in range(calls):
                fn()
            return time.perf_counter() - t0

        assert current() is None
        # strictly interleave the two measurements (bare, wrapped, bare,
        # ...) so allocator state and frequency drift hit both paths
        # equally; min-of-trials discards noisy rounds, and a sustained
        # contention burst (single-core CI) gets a fresh attempt rather
        # than a spurious failure
        for attempt in range(3):
            t_bare = float("inf")
            t_wrapped = float("inf")
            for _ in range(15):
                t_bare = min(t_bare, timed(run_bare))
                t_wrapped = min(t_wrapped, timed(run_wrapped))
            if t_wrapped <= t_bare * 1.02 + 200e-6:
                return
        raise AssertionError(
            f"disabled-path overhead too high: {t_wrapped:.6f}s wrapped "
            f"vs {t_bare:.6f}s bare"
        )
