"""Tests for continuous runtime telemetry (:mod:`repro.observe.runtime`).

The module docstring's design contract, as test classes:

1. :class:`RingSeries` is a bounded window with exact lifetime peaks —
   the window scrolls, ``vmax``/``mean`` do not forget.
2. The sampler installs/uninstalls like the tracer and every tick covers
   every series; sampling off costs one attribute check (<2% on an
   engine-execute loop with a sampler *installed but not started*, which
   is strictly harder than sampler-absent).
3. Worker heartbeats ride task results on the process backend: every pool
   pid reports, unsampled runs ship nothing, silent workers go stale.
4. :func:`drift` bands sampled summaries (and ledger log10 ratios) with
   the regression gate's MAD-sigma formula, and the regress/history
   integration carries the verdict end to end.
5. Acceptance: a sharded process-backend R-MAT TC run under the sampler
   is bit-for-bit identical to the sampler-off run, exports ring-buffer
   series through ``metrics()``, heartbeats from every pool pid, and a
   drift verdict against a seeded history baseline.
6. Leak hygiene: a subprocess that exits *without* calling
   ``shutdown_pool()`` still leaves no pool process and no shm segment
   behind (the import-time ``atexit`` hooks are the cleanup of last
   resort).

Process-backend tests carry the ``backend`` marker (CI's backend-smoke
job); the whole module carries ``runtime``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.bench import regress as bench_regress
from repro.bench.history import (
    SCHEMA_VERSION as HISTORY_SCHEMA_VERSION,
    runtime_summaries,
)
from repro.core import masked_spgemm
from repro.engine import ExecutionSession, Planner
from repro.engine.executor import execute
from repro.graphs import erdos_renyi, relabel_by_degree, rmat
from repro.machine import HASWELL
from repro.observe import metrics
from repro.observe import runtime as rt_mod
from repro.observe.runtime import (
    DEFAULT_STALE_AFTER_S,
    DRIFT_METRICS,
    SERIES_NAMES,
    RingSeries,
    RuntimeSampler,
    drift,
    drift_against_history,
    format_top,
    sampling,
    set_sampler,
    worker_heartbeat,
)
from repro.parallel import shutdown_pool
from repro.parallel.pool import (
    _worker_heartbeat,
    pool_pids,
    pool_stats,
    process_backend_available,
)
from repro.semiring import PLUS_PAIR, PLUS_TIMES

pytestmark = pytest.mark.runtime


def _triple(seed=1):
    a = erdos_renyi(60, 60, 5, seed=seed, values="uniform")
    b = erdos_renyi(60, 60, 5, seed=seed + 1, values="uniform")
    m = erdos_renyi(60, 60, 8, seed=seed + 2)
    return a, b, m


# ----------------------------------------------------------------------
# 1. ring-buffer series
# ----------------------------------------------------------------------


class TestRingSeries:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingSeries(0)

    def test_below_capacity_keeps_order(self):
        s = RingSeries(8)
        for i in range(5):
            s.append(float(i), float(i * 10))
        assert len(s) == 5
        assert s.times() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert s.values() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert s.last == 40.0

    def test_wraparound_scrolls_window_oldest_first(self):
        s = RingSeries(4)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s) == 4
        assert s.values() == [6.0, 7.0, 8.0, 9.0]
        assert s.times() == [6.0, 7.0, 8.0, 9.0]
        assert s.last == 9.0

    def test_lifetime_stats_survive_scroll(self):
        """The peak scrolled out of the window at capacity 4; the exact
        lifetime max/mean/count must still report it."""
        s = RingSeries(4)
        values = [1.0, 99.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        for i, v in enumerate(values):
            s.append(float(i), v)
        assert 99.0 not in s.values()
        assert s.vmax == 99.0
        assert s.count == len(values)
        assert s.mean == pytest.approx(sum(values) / len(values))

    def test_export_payload(self):
        s = RingSeries(4)
        s.append(0.0, 5.0)
        out = s.export()
        assert out == {"t": [0.0], "v": [5.0], "max": 5.0, "mean": 5.0,
                       "count": 1}

    def test_empty_series(self):
        s = RingSeries(4)
        assert len(s) == 0 and s.last == 0.0 and s.mean == 0.0
        assert s.export()["t"] == []


# ----------------------------------------------------------------------
# 2. sampler lifecycle, install contract, disabled-path overhead
# ----------------------------------------------------------------------


class TestSamplerLifecycle:
    def test_no_sampler_installed_by_default(self):
        assert rt_mod.current() is None

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            RuntimeSampler(interval_s=0.0)

    def test_sampling_installs_starts_and_restores(self):
        assert rt_mod.current() is None
        with sampling(interval_s=0.01) as rt:
            assert rt_mod.current() is rt
            assert rt.samples >= 1  # start() samples eagerly
            time.sleep(0.05)
        assert rt_mod.current() is None
        assert rt._thread is None, "stop() must join the thread"
        assert rt.samples >= 2  # eager + loop and/or final stop() sample

    def test_sampling_restores_previous_on_error(self):
        outer = RuntimeSampler(interval_s=5.0)
        prev = set_sampler(outer)
        try:
            with pytest.raises(RuntimeError):
                with sampling(interval_s=5.0):
                    raise RuntimeError("boom")
            assert rt_mod.current() is outer
        finally:
            set_sampler(prev)

    def test_tick_covers_every_series(self):
        rt = RuntimeSampler(interval_s=1.0)
        tick = rt.sample_once()
        assert set(tick) == set(SERIES_NAMES)
        assert tick["rss_bytes"] > 0
        assert all(len(rt.series[name]) == 1 for name in SERIES_NAMES)

    def test_snapshot_and_export_shapes(self):
        rt = RuntimeSampler(interval_s=1.0)
        rt.sample_once()
        snap = rt.snapshot()
        assert snap["schema_version"] == rt_mod.RUNTIME_SCHEMA_VERSION
        assert snap["samples"] == 1
        for name in SERIES_NAMES:
            assert name in snap
        assert snap["workers"] == [] and snap["stale_pids"] == []

        out = rt.export()
        assert set(out["series"]) == set(SERIES_NAMES)
        assert out["series"]["rss_bytes"]["count"] == 1
        assert out["summary"]["samples"] == 1
        assert out["workers"] == {}

    def test_summary_scalars(self):
        rt = RuntimeSampler(interval_s=1.0)
        rt.sample_once()
        rt.note_call()
        summary = rt.summary()
        for key in ("samples", "interval_s", "peak_rss_bytes",
                    "peak_shm_bytes", "peak_segcache_bytes",
                    "peak_worker_rss_bytes", "peak_tasks_inflight",
                    "mean_cpu_percent", "mean_spans_per_s",
                    "mean_calls_per_s", "calls_completed", "workers_seen",
                    "heartbeats"):
            assert key in summary
        assert summary["peak_rss_bytes"] > 0
        assert summary["calls_completed"] == 1
        assert summary["workers_seen"] == 0

    def test_format_top_renders_without_workers(self):
        rt = RuntimeSampler(interval_s=1.0)
        rt.sample_once()
        text = format_top(rt)
        assert "repro runtime top" in text
        assert "no worker heartbeats yet" in text

    def test_disabled_path_overhead_under_two_percent(self):
        """The sampler-off contract, measured the hard way.

        Times an engine-execute loop with no sampler against the same loop
        with a sampler *installed but never started* — every per-call hook
        (the executor's ``_CALL_NOTE``, the pool's heartbeat flag) takes
        its enabled branch, but no background thread adds noise.  That is
        strictly more instrumentation than the true disabled path, so passing
        here implies the disabled bound.  Same formula as the tracer gate.
        """
        a, b, m = _triple()
        pl = Planner(HASWELL).plan(a, b, m)
        execute(pl, a, b, m, semiring=PLUS_TIMES)  # warm caches

        def best_of(trials=7, calls=20):
            best = float("inf")
            for _ in range(trials):
                t0 = time.perf_counter()
                for _ in range(calls):
                    execute(pl, a, b, m, semiring=PLUS_TIMES)
                best = min(best, time.perf_counter() - t0)
            return best

        assert rt_mod.current() is None
        t_off = best_of()
        rt = RuntimeSampler(interval_s=60.0)  # never started: no thread
        prev = set_sampler(rt)
        try:
            t_idle = best_of()
        finally:
            set_sampler(prev)
        assert rt.samples == 0, "an un-started sampler must never sample"
        assert rt.calls_completed > 0, "the note_call hook must have fired"
        assert t_idle <= t_off * 1.02 + 200e-6, (
            f"sampler-installed overhead too high: {t_idle:.6f}s idle "
            f"vs {t_off:.6f}s off"
        )


# ----------------------------------------------------------------------
# 3. worker heartbeats and staleness
# ----------------------------------------------------------------------


class TestHeartbeatIngest:
    def test_worker_heartbeat_payload(self):
        hb = worker_heartbeat(tasks_completed=3, cached_forms=2)
        assert hb["pid"] == os.getpid()
        assert hb["rss_bytes"] > 0
        assert hb["cpu_seconds"] >= 0.0
        assert hb["tasks_completed"] == 3 and hb["cached_forms"] == 2

    def test_pool_helper_skips_heartbeat_when_flag_off(self):
        class _Task:
            heartbeat = False

        assert _worker_heartbeat(_Task()) is None

        class _Flagged:
            heartbeat = True

        hb = _worker_heartbeat(_Flagged())
        assert hb is not None and hb["pid"] == os.getpid()

    def test_ingest_skips_none_and_builds_fleet(self):
        rt = RuntimeSampler(interval_s=1.0)
        rt.ingest_heartbeats([
            None,
            {"pid": 111, "rss_bytes": 1000, "cpu_seconds": 0.5,
             "tasks_completed": 2, "cached_forms": 1, "t": 0.0},
            {"pid": 111, "rss_bytes": 2000, "cpu_seconds": 0.9,
             "tasks_completed": 4, "cached_forms": 1, "t": 0.0},
            {"pid": 222, "rss_bytes": 500, "cpu_seconds": 0.1,
             "tasks_completed": 1, "cached_forms": 0, "t": 0.0},
        ])
        assert rt.worker_pids() == [111, 222]
        assert rt.heartbeats_ingested == 3
        fleet = {w["pid"]: w for w in rt.fleet()}
        assert fleet[111]["rss_bytes"] == 2000.0  # latest wins
        assert fleet[111]["peak_rss_bytes"] == 2000.0
        assert fleet[111]["tasks_completed"] == 4
        assert fleet[111]["heartbeats"] == 2
        assert rt.summary()["workers_seen"] == 2
        assert rt.summary()["peak_worker_rss_bytes"] == 2000.0

    def test_staleness_detector(self):
        rt = RuntimeSampler(interval_s=1.0, stale_after_s=1.0)
        rt.ingest_heartbeats([
            {"pid": 333, "rss_bytes": 1, "cpu_seconds": 0.0,
             "tasks_completed": 1, "cached_forms": 0, "t": 0.0},
        ])
        now = time.perf_counter()
        assert rt.stale_workers(now) == []
        assert rt.stale_workers(now + 2.0) == [333]
        assert 333 in set(rt.snapshot()["stale_pids"]) or \
            rt.stale_workers(now) == []  # snapshot uses real clock: not stale yet
        text = format_top(rt)
        assert "pid" in text and "333" in text

    def test_default_staleness_window(self):
        assert RuntimeSampler().stale_after_s == DEFAULT_STALE_AFTER_S


# ----------------------------------------------------------------------
# 4. drift detection: banding, ledger ratios, regress/history integration
# ----------------------------------------------------------------------


def _summary(**over) -> dict:
    base = {
        "samples": 50, "interval_s": 0.02,
        "peak_rss_bytes": 100e6, "peak_shm_bytes": 10e6,
        "peak_segcache_bytes": 1e6, "peak_worker_rss_bytes": 50e6,
        "peak_tasks_inflight": 4.0, "mean_cpu_percent": 80.0,
        "mean_spans_per_s": 1000.0, "mean_calls_per_s": 10.0,
        "calls_completed": 100, "workers_seen": 2, "heartbeats": 40,
    }
    base.update(over)
    return base


class TestDrift:
    def test_identical_head_is_ok(self):
        verdict = drift(_summary(), [_summary()] * 3)
        assert verdict["verdict"] == "ok"
        assert verdict["flagged"] == []
        for name in DRIFT_METRICS:
            assert verdict["metrics"][name]["status"] == "ok"

    def test_no_baseline(self):
        verdict = drift(_summary(), [])
        assert verdict["verdict"] == "no-baseline"
        assert all(v["status"] == "no-baseline"
                   for v in verdict["metrics"].values())

    def test_memory_spike_flags_high(self):
        """Identical baselines: MAD=0, so the band is the min_rel floor
        (0.25 * median); a 2x RSS jump clears it deterministically."""
        verdict = drift(_summary(peak_rss_bytes=200e6), [_summary()] * 3)
        assert verdict["verdict"] == "drift"
        assert verdict["flagged"] == ["peak_rss_bytes"]
        row = verdict["metrics"]["peak_rss_bytes"]
        assert row["status"] == "high" and row["bad_direction"] == "high"
        assert row["band"] == pytest.approx(0.25 * 100e6)

    def test_single_baseline_sample_uses_rel_floor(self):
        verdict = drift(_summary(peak_shm_bytes=100e6),
                        [_summary()])  # n=1: MAD is 0 by construction
        assert verdict["metrics"]["peak_shm_bytes"]["base_mad"] == 0.0
        assert "peak_shm_bytes" in verdict["flagged"]

    def test_memory_drop_is_not_flagged(self):
        verdict = drift(_summary(peak_rss_bytes=10e6), [_summary()] * 3)
        assert verdict["metrics"]["peak_rss_bytes"]["status"] == "low"
        assert verdict["verdict"] == "ok"  # lower memory is not an anomaly

    def test_throughput_flags_low_only(self):
        low = drift(_summary(mean_spans_per_s=100.0), [_summary()] * 3)
        assert low["flagged"] == ["mean_spans_per_s"]
        assert low["metrics"]["mean_spans_per_s"]["bad_direction"] == "low"
        high = drift(_summary(mean_spans_per_s=5000.0), [_summary()] * 3)
        assert high["verdict"] == "ok"  # faster is fine

    def test_band_parameters_pass_through(self):
        # min_rel=2.0 floors the band at 2x the median: nothing can flag
        verdict = drift(_summary(peak_rss_bytes=250e6), [_summary()] * 3,
                        k_mad=1.0, min_rel=2.0, max_rel=3.0)
        assert verdict["verdict"] == "ok"
        assert verdict["min_rel"] == 2.0 and verdict["max_rel"] == 3.0

    def test_defaults_come_from_regress(self):
        verdict = drift(_summary(), [_summary()])
        assert verdict["k_mad"] == bench_regress.DEFAULT_K_MAD
        assert verdict["min_rel"] == bench_regress.DEFAULT_MIN_REL
        assert verdict["max_rel"] == bench_regress.DEFAULT_MAX_REL

    def test_ledger_ratio_flags_either_direction(self):
        """All-identical baseline ratios: log10 median and MAD are both 0,
        so the band is 0 and *any* model-error movement flags — in either
        direction (optimistic and pessimistic drifts are equally news)."""
        base_ledger = {"band": {"ratio_median": 1.0}}
        for head_ratio in (10.0, 0.1):
            verdict = drift(
                _summary(), [_summary()] * 3,
                head_ledger={"band": {"ratio_median": head_ratio}},
                baseline_ledgers=[base_ledger] * 3,
            )
            assert "ledger:band:log10_ratio" in verdict["flagged"]
            row = verdict["metrics"]["ledger:band:log10_ratio"]
            assert row["bad_direction"] == "any"
        same = drift(
            _summary(), [_summary()] * 3,
            head_ledger={"band": {"ratio_median": 1.0}},
            baseline_ledgers=[base_ledger] * 3,
        )
        assert same["verdict"] == "ok"

    def test_ledger_nonpositive_or_missing_ratio_skipped(self):
        verdict = drift(
            _summary(), [_summary()],
            head_ledger={"band": {"ratio_median": 0.0},
                         "shard-cell": {"rows": 4}},
            baseline_ledgers=[{"band": {"ratio_median": 1.0}}],
        )
        assert not any(k.startswith("ledger:") for k in verdict["metrics"])

    def test_drift_against_history_payload(self):
        rec = {
            "scheme": "msa", "case": "tc", "backend": "process",
            "threads": 4, "runtime": _summary(),
            "predictions": {"band": {"ratio_median": 1.0}},
        }
        other = dict(rec, case="other")
        history = {"schema_version": HISTORY_SCHEMA_VERSION,
                   "runs": [{"records": [rec, other]},
                            {"records": [dict(rec)]}]}
        summaries, ledgers = runtime_summaries(history, "msa|tc|process|4")
        assert len(summaries) == 2 and len(ledgers) == 2

        verdict = drift_against_history(
            _summary(peak_rss_bytes=400e6), history,
            scheme="msa", case="tc", backend="process", threads=4,
        )
        assert verdict["verdict"] == "drift"
        assert "peak_rss_bytes" in verdict["flagged"]
        none = drift_against_history(
            _summary(), history, scheme="msa", case="absent",
        )
        assert none["verdict"] == "no-baseline"

    def test_unsampled_history_records_contribute_nothing(self):
        rec = {"scheme": "msa", "case": "tc", "backend": "serial",
               "threads": 1, "median_s": 0.1}
        history = {"schema_version": HISTORY_SCHEMA_VERSION,
                   "runs": [{"records": [rec]}]}
        assert runtime_summaries(history, "msa|tc|serial|1") == ([], [])


class TestRegressIntegration:
    @staticmethod
    def _record(**over) -> dict:
        rec = {
            "scheme": "msa", "case": "tc", "backend": "serial", "threads": 1,
            "median_s": 0.1, "mad_s": 0.001, "counters": {"flops": 10},
        }
        rec.update(over)
        return rec

    def test_unsampled_records_have_no_drift_verdict(self):
        row = bench_regress.compare_records(self._record(), self._record())
        assert row["runtime_drift"] is None

    def test_runtime_drift_rides_an_ok_timing_row(self):
        """Timing identical, memory doubled: the timing gate stays ok and
        the advisory drift verdict carries the anomaly."""
        base = self._record(runtime=_summary())
        head = self._record(runtime=_summary(peak_rss_bytes=200e6))
        row = bench_regress.compare_records(base, head)
        assert row["status"] == "ok"
        assert row["runtime_drift"]["verdict"] == "drift"
        assert "peak_rss_bytes" in row["runtime_drift"]["flagged"]

        verdict = bench_regress.compare_runs(
            {"records": [base]}, {"records": [head]}
        )
        assert verdict["verdict"] == "ok"  # advisory: does not gate
        assert verdict["runtime_drifts"] == ["msa|tc|serial|1"]
        text = bench_regress.render_report(verdict)
        assert "runtime drift" in text

    def test_matching_runtime_is_quiet(self):
        base = self._record(runtime=_summary())
        head = self._record(runtime=_summary())
        verdict = bench_regress.compare_runs(
            {"records": [base]}, {"records": [head]}
        )
        assert verdict["runtime_drifts"] == []
        assert "runtime drift" not in bench_regress.render_report(verdict)


class TestHistoryCollection:
    def test_collect_record_attaches_runtime_summary(self):
        from repro.bench.history import (
            RUNTIME_SAMPLE_INTERVAL_S,
            collect_record,
            record_key,
            scheme_by_name,
        )

        a, b, m = _triple(seed=4)
        rec = collect_record(
            scheme_by_name("MSA-1P"), "unit", [(a, b, m, False)],
            repeats=2, sample_runtime=True,
        )
        assert record_key(rec) == "MSA-1P|unit|serial|1"
        rt = rec["runtime"]
        assert rt["samples"] >= 1
        assert rt["interval_s"] == RUNTIME_SAMPLE_INTERVAL_S
        assert rt["peak_rss_bytes"] > 0
        assert rt_mod.current() is None, "collection must uninstall"

    def test_collect_record_without_flag_has_no_runtime(self):
        from repro.bench.history import collect_record, scheme_by_name

        a, b, m = _triple(seed=5)
        rec = collect_record(scheme_by_name("MSA-1P"), "unit",
                             [(a, b, m, False)], repeats=1)
        assert "runtime" not in rec


# ----------------------------------------------------------------------
# 5. process-backend acceptance (backend marker: CI smoke job)
# ----------------------------------------------------------------------


@pytest.mark.backend
@pytest.mark.skipif(
    not process_backend_available(), reason="no shared-memory support"
)
class TestProcessBackendRuntime:
    @pytest.fixture(scope="class", autouse=True)
    def _pool_teardown(self):
        yield
        shutdown_pool()

    def test_sharded_tc_sampled_vs_unsampled_bitwise(self):
        """The acceptance run: sharded process-backend R-MAT TC under the
        sampler — per-worker heartbeats from every pool pid, ring-buffer
        series through ``metrics()``, a drift verdict against a seeded
        baseline, and a result bit-for-bit identical to the sampler-off
        run."""
        low = relabel_by_degree(rmat(10, seed=1).pattern()).tril(-1)
        kwargs = dict(algo="msa", shards=(2, 2), backend="process",
                      semiring=PLUS_PAIR)

        assert rt_mod.current() is None
        ref = masked_spgemm(low, low, low, **kwargs)

        with sampling(interval_s=0.02) as rt:
            with ExecutionSession() as session:
                # several sessioned iterations so task distribution touches
                # every pool worker at least once
                for _ in range(8):
                    got = masked_spgemm(low, low, low, session=session,
                                        **kwargs)
                    if set(rt.worker_pids()) >= set(pool_pids()):
                        break
            m = metrics(None)
            frame = format_top(rt)
        summary = rt.summary()

        # bit-for-bit: sampling never changes results
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)

        # every pool worker produced a heartbeat series
        pids = pool_pids()
        assert len(pids) >= 2
        assert set(rt.worker_pids()) == set(pids)
        for w in rt.fleet():
            assert w["rss_bytes"] > 0
            assert w["tasks_completed"] >= 1
            assert w["heartbeats"] >= 1
        assert summary["heartbeats"] >= len(pids)
        assert summary["workers_seen"] == len(pids)

        # ring buffers flow out through metrics() while installed
        run = m["runtime"]
        assert run["schema_version"] == rt_mod.RUNTIME_SCHEMA_VERSION
        assert set(run["series"]) == set(SERIES_NAMES)
        assert run["series"]["rss_bytes"]["count"] >= 1
        assert run["series"]["tasks_inflight"]["count"] >= 1
        assert set(run["workers"]) == {str(p) for p in pids}
        for payload in run["workers"].values():
            assert payload["rss_series"]["count"] >= 1
        json.dumps(m)  # exporter stays JSON-serializable with runtime data

        # the dashboard shows the fleet
        for pid in pids:
            assert str(pid) in frame

        # drift verdict against a seeded baseline: identical summaries
        # band to "ok", an inflated-memory head flags deterministically
        rec = {"scheme": "msa", "case": "tc_rmat", "backend": "process",
               "threads": 4, "runtime": dict(summary)}
        history = {"schema_version": HISTORY_SCHEMA_VERSION,
                   "runs": [{"records": [rec]}] * 3}
        ok = drift_against_history(summary, history, scheme="msa",
                                   case="tc_rmat", backend="process",
                                   threads=4)
        assert ok["verdict"] == "ok"
        bloated = dict(summary)
        bloated["peak_rss_bytes"] = summary["peak_rss_bytes"] * 3
        bad = drift_against_history(bloated, history, scheme="msa",
                                    case="tc_rmat", backend="process",
                                    threads=4)
        assert bad["verdict"] == "drift"
        assert "peak_rss_bytes" in bad["flagged"]

    def test_unsampled_run_ships_no_heartbeats(self):
        low = relabel_by_degree(rmat(9, seed=2).pattern()).tril(-1)
        assert rt_mod.current() is None
        masked_spgemm(low, low, low, algo="msa", shards=(2, 2),
                      backend="process", semiring=PLUS_PAIR)
        # install a sampler *after* the run: nothing was shipped to ingest
        rt = RuntimeSampler(interval_s=60.0)
        assert rt.worker_pids() == []
        assert rt.heartbeats_ingested == 0

    def test_pool_task_gauges(self):
        low = relabel_by_degree(rmat(9, seed=3).pattern()).tril(-1)
        before = pool_stats()["tasks_completed"]
        masked_spgemm(low, low, low, algo="msa", shards=(2, 2),
                      backend="process", semiring=PLUS_PAIR)
        stats = pool_stats()
        assert stats["tasks_completed"] > before
        assert stats["tasks_inflight"] == 0  # all futures consumed
        assert stats["size"] >= 2
        assert sorted(stats["pids"]) == list(stats["pids"])


# ----------------------------------------------------------------------
# 6. leak hygiene: atexit cleans up after a run that never shuts down
# ----------------------------------------------------------------------


_LEAK_SCRIPT = r"""
import json, sys
from repro.core import masked_spgemm
from repro.engine import ExecutionSession
from repro.graphs import relabel_by_degree, rmat
from repro.parallel import shm
from repro.parallel.pool import pool_pids, process_backend_available
from repro.semiring import PLUS_PAIR

if not process_backend_available():
    print(json.dumps({"skip": True}))
    sys.exit(0)

low = relabel_by_degree(rmat(9, seed=7).pattern()).tril(-1)
with ExecutionSession() as session:
    masked_spgemm(low, low, low, algo="msa", shards=(2, 2),
                  backend="process", semiring=PLUS_PAIR, session=session)
    # report live state mid-session, then exit WITHOUT shutdown_pool():
    # the import-time atexit hooks must reap the pool and the segments
    print(json.dumps({
        "skip": False,
        "segments": list(shm.active_segments()),
        "pids": list(pool_pids()),
    }))
sys.exit(0)
"""


@pytest.mark.backend
@pytest.mark.skipif(
    not process_backend_available(), reason="no shared-memory support"
)
class TestLeakHygiene:
    def test_hard_exit_reaps_pool_and_segments(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", _LEAK_SCRIPT],
            capture_output=True, text=True, timeout=180, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        state = json.loads(proc.stdout.strip().splitlines()[-1])
        if state.get("skip"):
            pytest.skip("child had no shared-memory support")
        assert state["segments"], "run must have published shm segments"
        assert state["pids"], "run must have spawned pool workers"

        # no segment survived the interpreter exit
        for name in state["segments"]:
            assert not os.path.exists(os.path.join("/dev/shm", name)), (
                f"leaked shared-memory segment {name}"
            )
        # no worker survived either (atexit shutdown_pool reaped them)
        for pid in state["pids"]:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            # pid exists: give a just-exiting worker a moment, then re-check
            time.sleep(1.0)
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            raise AssertionError(f"leaked pool worker pid {pid}")
