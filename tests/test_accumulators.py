"""Unit tests for the four masked accumulators (paper Section 5).

These exercise the SETALLOWED/INSERT/REMOVE state machines of Figures 3
and 5 directly, including the lazy-evaluation contract of INSERT (masked-out
products must never evaluate their value lambda).
"""

import numpy as np
import pytest

from repro.core.accumulators import (
    ALLOWED,
    MCA,
    MSA,
    NOTALLOWED,
    SET,
    HashAccumulator,
    HashComplement,
    MSAComplement,
    table_capacity,
)
from repro.machine import OpCounter

ADD = lambda x, y: x + y  # noqa: E731


def make_msa(n=16):
    return MSA(n, ADD)


def make_hash(n=16):
    return HashAccumulator(n, ADD)


MASKED_FACTORIES = [make_msa, make_hash]


@pytest.mark.parametrize("factory", MASKED_FACTORIES, ids=["msa", "hash"])
class TestMaskedStateMachine:
    def test_insert_without_allow_is_discarded(self, factory):
        acc = factory()
        acc.insert(3, 7.0)
        assert acc.remove(3) is None

    def test_lambda_not_evaluated_when_discarded(self, factory):
        acc = factory()
        evaluated = []
        acc.insert(3, lambda: evaluated.append(1) or 1.0)
        assert evaluated == []  # the paper's lazy INSERT contract

    def test_lambda_evaluated_when_allowed(self, factory):
        acc = factory()
        acc.set_allowed(3)
        evaluated = []
        acc.insert(3, lambda: evaluated.append(1) or 2.5)
        assert evaluated == [1]
        assert acc.remove(3) == 2.5

    def test_accumulation(self, factory):
        acc = factory()
        acc.set_allowed(5)
        acc.insert(5, 1.0)
        acc.insert(5, 2.0)
        acc.insert(5, 3.5)
        assert acc.remove(5) == pytest.approx(6.5)

    def test_allowed_but_never_inserted_returns_none(self, factory):
        acc = factory()
        acc.set_allowed(4)
        assert acc.remove(4) is None

    def test_remove_clears_key(self, factory):
        acc = factory()
        acc.set_allowed(2)
        acc.insert(2, 1.0)
        assert acc.remove(2) == 1.0
        # after REMOVE "all values with the specified key are removed"
        assert acc.remove(2) is None

    def test_set_allowed_idempotent(self, factory):
        acc = factory()
        acc.set_allowed(1)
        acc.set_allowed(1)
        acc.insert(1, 2.0)
        assert acc.remove(1) == 2.0

    def test_keys_independent(self, factory):
        acc = factory()
        acc.set_allowed(0)
        acc.set_allowed(7)
        acc.insert(0, 1.0)
        acc.insert(7, 9.0)
        assert acc.remove(7) == 9.0
        assert acc.remove(0) == 1.0

    def test_reset_restores_default(self, factory):
        acc = factory()
        acc.set_allowed(3)
        acc.insert(3, 1.0)
        acc.reset()
        acc.insert(3, 5.0)  # NOTALLOWED again -> discarded
        assert acc.remove(3) is None

    def test_reuse_across_rows(self, factory):
        acc = factory()
        for row in range(5):
            acc.set_allowed(row)
            acc.insert(row, float(row))
            assert acc.remove(row) == float(row)
            acc.reset()

    def test_custom_monoid(self, factory):
        acc = factory()
        acc.add = min
        acc.set_allowed(2)
        acc.insert(2, 4.0)
        acc.insert(2, 1.0)
        acc.insert(2, 9.0)
        assert acc.remove(2) == 1.0


class TestMSASpecifics:
    def test_states_array_transitions(self):
        acc = MSA(8, ADD)
        assert acc.states[3] == NOTALLOWED
        acc.set_allowed(3)
        assert acc.states[3] == ALLOWED
        acc.insert(3, 1.0)
        assert acc.states[3] == SET
        acc.remove(3)
        assert acc.states[3] == NOTALLOWED

    def test_counter_instrumentation(self):
        c = OpCounter()
        acc = MSA(8, ADD, counter=c)
        acc.set_allowed(1)
        acc.insert(1, 1.0)
        acc.insert(2, 1.0)  # discarded
        acc.remove(1)
        assert c.accum_allowed == 1
        assert c.accum_inserts == 2
        assert c.accum_removes == 1
        assert c.flops == 1  # only the allowed insert multiplied


class TestHashSpecifics:
    def test_table_capacity_load_factor(self):
        # capacity must keep load factor <= 0.25 and be a power of two
        for keys in (1, 3, 7, 16, 100):
            cap = table_capacity(keys)
            assert cap >= keys / 0.25
            assert cap & (cap - 1) == 0

    def test_no_resizing_needed_at_capacity(self):
        acc = HashAccumulator(50, ADD)
        for k in range(50):
            acc.set_allowed(k * 131)
            acc.insert(k * 131, 1.0)
        for k in range(50):
            assert acc.remove(k * 131) == 1.0

    def test_probe_counting(self):
        c = OpCounter()
        acc = HashAccumulator(4, ADD, counter=c)
        acc.set_allowed(1)
        assert c.hash_probes >= 1

    def test_colliding_keys(self):
        # keys that collide modulo the table size must still be distinct
        acc = HashAccumulator(4, ADD)
        cap = acc.capacity
        k1, k2 = 3, 3 + cap
        acc.set_allowed(k1)
        acc.set_allowed(k2)
        acc.insert(k1, 1.0)
        acc.insert(k2, 2.0)
        assert acc.remove(k1) == 1.0
        assert acc.remove(k2) == 2.0


class TestMCA:
    def test_two_state_machine(self):
        acc = MCA(4, ADD)
        # every key is ALLOWED from the start: no set_allowed needed
        acc.insert(0, 2.0)
        acc.insert(0, 3.0)
        assert acc.remove(0) == 5.0
        assert acc.remove(1) is None

    def test_set_allowed_is_free_but_bounds_checked(self):
        acc = MCA(4, ADD)
        acc.set_allowed(2)  # no-op
        with pytest.raises(IndexError):
            acc.set_allowed(9)

    def test_remove_restores_allowed(self):
        acc = MCA(3, ADD)
        acc.insert(1, 1.0)
        assert acc.remove(1) == 1.0
        acc.insert(1, 7.0)
        assert acc.remove(1) == 7.0

    def test_no_complement_support(self):
        acc = MCA(3, ADD)
        assert not acc.supports_complement
        with pytest.raises(NotImplementedError):
            acc.set_not_allowed(0)

    def test_reset(self):
        acc = MCA(3, ADD)
        acc.insert(0, 1.0)
        acc.reset()
        assert acc.remove(0) is None


COMPL_FACTORIES = [
    lambda: MSAComplement(16, ADD),
    lambda: HashComplement(16, ADD),
]


@pytest.mark.parametrize("factory", COMPL_FACTORIES, ids=["msa-c", "hash-c"])
class TestComplementAccumulators:
    def test_default_allowed(self, factory):
        acc = factory()
        acc.insert(3, 4.0)
        assert acc.remove(3) == 4.0

    def test_not_allowed_discards(self, factory):
        acc = factory()
        acc.set_not_allowed(3)
        evaluated = []
        acc.insert(3, lambda: evaluated.append(1) or 1.0)
        assert evaluated == []
        assert acc.remove(3) is None

    def test_inserted_keys_tracked(self, factory):
        acc = factory()
        acc.set_not_allowed(5)
        acc.insert(1, 1.0)
        acc.insert(9, 2.0)
        acc.insert(5, 3.0)  # discarded
        acc.insert(1, 4.0)  # accumulate, no duplicate key entry
        assert sorted(acc.inserted_keys()) == [1, 9]

    def test_reset_restores_default(self, factory):
        acc = factory()
        acc.set_not_allowed(2)
        acc.insert(4, 1.0)
        acc.reset()
        # 2 is allowed again, 4 is cleared
        acc.insert(2, 5.0)
        assert acc.remove(2) == 5.0
        assert acc.remove(4) is None

    def test_accumulation(self, factory):
        acc = factory()
        acc.insert(7, 1.5)
        acc.insert(7, 2.5)
        assert acc.remove(7) == 4.0

    def test_supports_complement_flag(self, factory):
        assert factory().supports_complement
