"""Unit tests for the cache simulator and access traces."""

import numpy as np
import pytest

from repro.machine import AccessTrace, CacheSim


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(1024, line_bytes=64, assoc=2)
        assert not c.access(0)  # cold miss
        assert c.access(0)  # hit
        assert c.access(63)  # same line
        assert not c.access(64)  # next line
        assert c.hits == 2
        assert c.misses == 2

    def test_capacity_eviction_lru(self):
        # fully-associative single-set cache of 2 lines
        c = CacheSim(128, line_bytes=64, assoc=2)
        assert c.n_sets == 1
        c.access(0)  # A
        c.access(64)  # B
        c.access(0)  # touch A (MRU)
        c.access(128)  # C evicts B (LRU)
        assert c.access(0)  # A still resident
        assert not c.access(64)  # B was evicted

    def test_direct_mapped_conflict(self):
        # 2 sets, assoc 1: lines 0 and 2 map to set 0 and conflict
        c = CacheSim(128, line_bytes=64, assoc=1)
        assert c.n_sets == 2
        c.access(0)
        c.access(2 * 64)
        assert not c.access(0)  # evicted by the conflicting line

    def test_access_range_counts_lines(self):
        c = CacheSim(4096, line_bytes=64)
        h, m = c.access_range(0, 256)  # 4 lines
        assert m == 4 and h == 0
        h, m = c.access_range(0, 256)
        assert h == 4 and m == 0

    def test_miss_rate(self):
        c = CacheSim(4096)
        assert c.miss_rate() == 0.0
        c.access(0)
        assert c.miss_rate() == 1.0
        c.access(0)
        assert c.miss_rate() == 0.5

    def test_flush(self):
        c = CacheSim(4096)
        c.access(0)
        c.flush()
        assert c.hits == c.misses == 0
        assert not c.access(0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(64, line_bytes=0)

    def test_working_set_behaviour(self):
        """A working set larger than capacity must keep missing; one that
        fits must keep hitting — the effect the cost model interpolates."""
        cache = CacheSim(1024, line_bytes=64, assoc=16)  # 16 lines
        small = [i * 64 for i in range(8)]
        big = [i * 64 for i in range(64)]
        for _ in range(3):
            cache.access_many(small)
        assert cache.hits >= 2 * len(small)
        cache.flush()
        for _ in range(3):
            cache.access_many(big)  # cyclic sweep over 4x capacity
        assert cache.miss_rate() > 0.9


class TestAccessTrace:
    def test_contiguous_replay(self):
        t = AccessTrace()
        t.touch_contiguous("a", 0, 512)  # 64 words
        c = CacheSim(4096, line_bytes=64)
        h, m = t.replay(c)
        assert m == 8  # 512 bytes / 64
        assert h == 64 - 8

    def test_scatter_replay(self):
        t = AccessTrace()
        idx = np.array([0, 100, 200, 0])
        t.touch("spa", 0, idx, stride_bytes=8)
        c = CacheSim(64, line_bytes=8, assoc=8)
        h, m = t.replay(c)
        assert h + m == 4

    def test_n_accesses(self):
        t = AccessTrace()
        t.touch("x", 0, np.arange(5), 8)
        t.touch("y", 0, np.arange(3), 8)
        assert t.n_accesses() == 8

    def test_sampling(self):
        t = AccessTrace()
        t.touch("x", 0, np.arange(1000), 8)
        c = CacheSim(64 * 1024)
        t.replay(c, sample=10)
        assert c.hits + c.misses == 100
