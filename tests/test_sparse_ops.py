"""Unit tests for element-wise / structural sparse operations."""

import numpy as np
import pytest

from repro.sparse import (
    CSC,
    CSR,
    ewise_add,
    ewise_mult,
    mask_pattern,
    nnz_overlap,
    pattern_difference,
    pattern_intersection,
    pattern_union,
    reduce_sum,
    row_reduce,
)

from .conftest import assert_csr_equal, random_csr


class TestEwiseMult:
    def test_matches_scipy(self):
        a = random_csr(20, 15, 4, seed=1)
        b = random_csr(20, 15, 4, seed=2)
        want = CSR.from_scipy(a.to_scipy().multiply(b.to_scipy()).tocsr())
        assert_csr_equal(ewise_mult(a, b), want)

    def test_disjoint_patterns_empty(self):
        a = CSR.from_coo((2, 2), [0], [0], [1.0])
        b = CSR.from_coo((2, 2), [1], [1], [1.0])
        assert ewise_mult(a, b).nnz == 0

    def test_custom_op(self):
        a = CSR.from_coo((1, 2), [0, 0], [0, 1], [5.0, 2.0])
        b = CSR.from_coo((1, 2), [0, 0], [0, 1], [3.0, 7.0])
        m = ewise_mult(a, b, op=np.maximum)
        assert np.array_equal(m.data, [5.0, 7.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ewise_mult(CSR.empty((2, 2)), CSR.empty((2, 3)))

    def test_empty_operand(self):
        a = random_csr(5, 5, 2, seed=3)
        assert ewise_mult(a, CSR.empty((5, 5))).nnz == 0
        assert ewise_mult(CSR.empty((5, 5)), a).nnz == 0


class TestEwiseAdd:
    def test_matches_scipy(self):
        a = random_csr(20, 15, 4, seed=4)
        b = random_csr(20, 15, 4, seed=5)
        want = CSR.from_scipy((a.to_scipy() + b.to_scipy()).tocsr())
        assert_csr_equal(ewise_add(a, b), want)

    def test_generic_op_union_semantics(self):
        a = CSR.from_coo((1, 3), [0, 0], [0, 1], [2.0, 3.0])
        b = CSR.from_coo((1, 3), [0, 0], [1, 2], [10.0, 4.0])
        m = ewise_add(a, b, op=np.maximum)
        assert np.array_equal(m.to_dense(), [[2.0, 10.0, 4.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ewise_add(CSR.empty((2, 2)), CSR.empty((3, 2)))


class TestMaskPattern:
    def test_keeps_only_masked(self):
        a = random_csr(15, 15, 4, seed=6)
        m = random_csr(15, 15, 4, seed=7)
        kept = mask_pattern(a, m)
        want = CSR.from_scipy(a.to_scipy().multiply(m.pattern().to_scipy()).tocsr())
        assert_csr_equal(kept, want)

    def test_mask_values_ignored(self):
        a = CSR.from_coo((1, 2), [0, 0], [0, 1], [3.0, 4.0])
        m = CSR.from_coo((1, 2), [0], [1], [99.0])
        kept = mask_pattern(a, m)
        assert kept.nnz == 1
        assert kept.to_dense()[0, 1] == 4.0

    def test_complement_partition(self):
        """mask(X, M) + mask(X, !M) == X — the complement identity."""
        a = random_csr(20, 20, 5, seed=8)
        m = random_csr(20, 20, 5, seed=9)
        inside = mask_pattern(a, m)
        outside = mask_pattern(a, m, complement=True)
        assert inside.nnz + outside.nnz == a.nnz
        assert_csr_equal(ewise_add(inside, outside), a)

    def test_empty_mask_complement_keeps_all(self):
        a = random_csr(6, 6, 2, seed=10)
        assert_csr_equal(mask_pattern(a, CSR.empty((6, 6)), complement=True), a)

    def test_empty_mask_keeps_none(self):
        a = random_csr(6, 6, 2, seed=11)
        assert mask_pattern(a, CSR.empty((6, 6))).nnz == 0


class TestReductions:
    def test_reduce_sum(self):
        a = random_csr(10, 10, 3, seed=12)
        assert reduce_sum(a) == pytest.approx(a.to_dense().sum())

    def test_row_reduce_add(self):
        a = random_csr(10, 10, 3, seed=13)
        assert np.allclose(row_reduce(a), a.to_dense().sum(axis=1))

    def test_row_reduce_empty(self):
        assert np.array_equal(row_reduce(CSR.empty((4, 4))), np.zeros(4))


class TestPatternSetOps:
    def test_union_intersection_difference_consistency(self):
        a = random_csr(18, 18, 4, seed=14)
        b = random_csr(18, 18, 4, seed=15)
        u = pattern_union(a, b)
        i = pattern_intersection(a, b)
        d_ab = pattern_difference(a, b)
        d_ba = pattern_difference(b, a)
        # |A u B| = |A| + |B| - |A n B|
        assert u.nnz == a.nnz + b.nnz - i.nnz
        # A = (A \ B) u (A n B)
        assert d_ab.nnz + i.nnz == a.nnz
        assert d_ba.nnz + i.nnz == b.nnz

    def test_nnz_overlap(self):
        a = CSR.from_coo((2, 2), [0, 1], [0, 1], [1.0, 1.0])
        b = CSR.from_coo((2, 2), [0, 1], [0, 0], [1.0, 1.0])
        assert nnz_overlap(a, b) == 1


class TestCSC:
    def test_from_csr_columns(self):
        a = random_csr(10, 7, 3, seed=16)
        c = CSC.from_csr(a)
        dense = a.to_dense()
        for j in range(7):
            rows, vals = c.col(j)
            col = np.zeros(10)
            col[rows] = vals
            assert np.allclose(col, dense[:, j])

    def test_roundtrip(self):
        a = random_csr(10, 7, 3, seed=17)
        assert_csr_equal(CSC.from_csr(a).to_csr(), a)

    def test_col_nnz(self):
        a = random_csr(10, 7, 3, seed=18)
        c = CSC.from_csr(a)
        assert np.array_equal(c.col_nnz(), (a.to_dense() != 0).sum(axis=0))

    def test_to_dense(self):
        a = random_csr(6, 5, 2, seed=19)
        assert np.allclose(CSC.from_csr(a).to_dense(), a.to_dense())

    def test_shape_validation(self):
        a = random_csr(4, 5, 2, seed=20)
        with pytest.raises(ValueError, match="incompatible"):
            CSC((5, 5), a)


class TestDCSR:
    def test_roundtrip(self):
        from repro.sparse import DCSR

        a = random_csr(50, 40, 2, seed=30)
        d = DCSR.from_csr(a)
        assert_csr_equal(d.to_csr(), a)

    def test_hypersparse_storage_win(self):
        from repro.sparse import DCSR

        # 10 nonzeros in a 100000-row matrix
        a = CSR.from_coo(
            (100000, 100),
            np.arange(0, 100000, 10000),
            np.arange(10),
            np.ones(10),
        )
        d = DCSR.from_csr(a)
        assert d.is_hypersparse()
        assert d.nzr == 10
        csr_words = a.nrows + 1 + 2 * a.nnz
        assert d.storage_words() < csr_words / 1000

    def test_row_lookup(self):
        from repro.sparse import DCSR

        a = random_csr(30, 30, 2, seed=31)
        d = DCSR.from_csr(a)
        for i in range(30):
            c1, v1 = a.sort_indices().row(i)
            c2, v2 = d.row(i)
            assert np.array_equal(c1, c2)
            assert np.array_equal(v1, v2)

    def test_iter_nonempty_skips_empty(self):
        from repro.sparse import DCSR

        a = CSR.from_coo((10, 10), [2, 7], [1, 3], [1.0, 2.0])
        d = DCSR.from_csr(a)
        visited = [i for i, _, _ in d.iter_nonempty_rows()]
        assert visited == [2, 7]

    def test_check_rejects_malformed(self):
        from repro.sparse import DCSR

        with pytest.raises(ValueError, match="strictly increasing"):
            DCSR((5, 5), np.array([2, 1]), np.array([0, 1, 2]),
                 np.array([0, 1]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="nonempty"):
            DCSR((5, 5), np.array([1, 2]), np.array([0, 0, 1]),
                 np.array([0]), np.array([1.0]))

    def test_empty_matrix(self):
        from repro.sparse import DCSR

        d = DCSR.from_csr(CSR.empty((5, 5)))
        assert d.nzr == 0 and d.nnz == 0
        assert d.to_csr().nnz == 0


class TestDCSREdgeCases:
    """Round-trip and ``check()`` edge cases for the shard storage tier."""

    def test_sorted_input_shares_arrays(self):
        from repro.sparse import DCSR

        a = random_csr(40, 30, 3, seed=40).sort_indices()
        d = DCSR.from_csr(a)
        # the sorted fast path must not copy the payload arrays
        assert d.indices is a.indices
        assert d.data is a.data
        assert_csr_equal(d.to_csr(), a)

    def test_unsorted_input_canonicalises(self):
        from repro.sparse import DCSR

        a = CSR.from_coo((4, 4), [1, 1, 3], [3, 0, 2], [1.0, 2.0, 3.0])
        d = DCSR.from_csr(a)
        assert_csr_equal(d.to_csr(), a.sort_indices())

    def test_zero_row_matrix(self):
        from repro.sparse import DCSR

        d = DCSR.from_csr(CSR.empty((0, 7)))
        assert d.nzr == 0 and d.to_csr().shape == (0, 7)

    def test_single_hypersparse_row(self):
        from repro.sparse import DCSR

        a = CSR.from_coo((10000, 4), [9999], [2], [5.0])
        d = DCSR.from_csr(a)
        assert d.nzr == 1 and d.is_hypersparse()
        cols, vals = d.row(9999)
        assert np.array_equal(cols, [2]) and np.array_equal(vals, [5.0])
        cols, vals = d.row(0)  # absent row: empty, not an error
        assert cols.size == 0 and vals.size == 0
        assert_csr_equal(d.to_csr(), a)

    def test_from_sorted_coo_matches_from_csr(self):
        from repro.sparse import DCSR

        a = random_csr(25, 25, 3, seed=41).sort_indices()
        rows, cols, vals = a.to_coo()
        d = DCSR.from_sorted_coo(a.shape, rows, cols, vals)
        assert_csr_equal(d.to_csr(), a)

    def test_from_sorted_coo_empty(self):
        from repro.sparse import DCSR

        e = np.empty(0, dtype=np.int64)
        d = DCSR.from_sorted_coo((6, 6), e, e, np.empty(0))
        assert d.nzr == 0 and d.nnz == 0
        d.check()

    def test_row_block_slices_and_rebases(self):
        from repro.sparse import DCSR

        a = random_csr(30, 20, 2, seed=42)
        d = DCSR.from_csr(a)
        block = d.row_block(10, 25)
        assert block.shape == (15, 20)
        block.check()
        want = a.sort_indices().to_scipy()[10:25].tocsr()
        assert_csr_equal(block.to_csr(), CSR.from_scipy(want))

    def test_row_block_empty_range(self):
        from repro.sparse import DCSR

        d = DCSR.from_csr(random_csr(10, 10, 2, seed=43))
        block = d.row_block(4, 4)
        assert block.shape == (0, 10) and block.nnz == 0

    def test_row_block_out_of_range(self):
        from repro.sparse import DCSR

        d = DCSR.from_csr(random_csr(10, 10, 2, seed=44))
        with pytest.raises(ValueError, match="out of range"):
            d.row_block(3, 11)
        with pytest.raises(ValueError, match="out of range"):
            d.row_block(-1, 5)

    def test_check_rejects_bad_indptr_and_indices(self):
        from repro.sparse import DCSR

        with pytest.raises(ValueError, match="nzr \\+ 1"):
            DCSR((5, 5), np.array([1]), np.array([0]), np.array([0]),
                 np.array([1.0]))
        with pytest.raises(ValueError, match="row id out of range"):
            DCSR((5, 5), np.array([5]), np.array([0, 1]), np.array([0]),
                 np.array([1.0]))
        with pytest.raises(ValueError, match=r"span \[0, nnz\]"):
            DCSR((5, 5), np.array([1]), np.array([0, 2]), np.array([0]),
                 np.array([1.0]))
        with pytest.raises(ValueError, match="column index out of range"):
            DCSR((5, 5), np.array([1]), np.array([0, 1]), np.array([5]),
                 np.array([1.0]))


class TestDCSC:
    def test_roundtrip(self):
        from repro.sparse import DCSC

        a = random_csr(30, 40, 3, seed=45)
        c = DCSC.from_csr(a)
        assert_csr_equal(c.to_csr(), a.sort_indices())

    def test_column_panel_slices_and_rebases(self):
        from repro.sparse import DCSC

        a = random_csr(20, 40, 3, seed=46)
        c = DCSC.from_csr(a)
        panel = c.column_panel(10, 30)
        assert panel.shape == (20, 20)
        panel.check()
        want = a.sort_indices().to_scipy()[:, 10:30].tocsr()
        assert_csr_equal(panel.to_csr(), CSR.from_scipy(want))

    def test_col_lookup(self):
        from repro.sparse import DCSC

        a = random_csr(15, 15, 2, seed=47)
        c = DCSC.from_csr(a)
        csc = CSC.from_csr(a)
        for j in range(15):
            r1, v1 = csc.col(j)
            r2, v2 = c.col(j)
            assert np.array_equal(np.sort(r1), np.sort(r2))

    def test_hypersparse_columns(self):
        from repro.sparse import DCSC

        # 3 nonempty columns out of 50000
        a = CSR.from_coo(
            (4, 50000), [0, 1, 2], [10, 20000, 49999], np.ones(3)
        )
        c = DCSC.from_csr(a)
        assert c.nzc == 3 and c.is_hypersparse()
        assert np.array_equal(c.cols, [10, 20000, 49999])

    def test_transfer_form_round_trips(self):
        from repro.sparse import DCSC, DCSR

        a = random_csr(20, 30, 3, seed=48)
        c = DCSC.from_csr(a)
        t = c.to_transposed_dcsr()
        back = DCSC((t.shape[1], t.shape[0]), t)
        assert_csr_equal(back.to_csr(), a.sort_indices())

    def test_shape_mismatch_rejected(self):
        from repro.sparse import DCSC, DCSR

        t = DCSR.from_csr(random_csr(5, 6, 2, seed=49))
        with pytest.raises(ValueError, match="incompatible shape"):
            DCSC((5, 6), t)  # needs the transpose's shape, (6, 5)
