"""Unit tests for element-wise / structural sparse operations."""

import numpy as np
import pytest

from repro.sparse import (
    CSC,
    CSR,
    ewise_add,
    ewise_mult,
    mask_pattern,
    nnz_overlap,
    pattern_difference,
    pattern_intersection,
    pattern_union,
    reduce_sum,
    row_reduce,
)

from .conftest import assert_csr_equal, random_csr


class TestEwiseMult:
    def test_matches_scipy(self):
        a = random_csr(20, 15, 4, seed=1)
        b = random_csr(20, 15, 4, seed=2)
        want = CSR.from_scipy(a.to_scipy().multiply(b.to_scipy()).tocsr())
        assert_csr_equal(ewise_mult(a, b), want)

    def test_disjoint_patterns_empty(self):
        a = CSR.from_coo((2, 2), [0], [0], [1.0])
        b = CSR.from_coo((2, 2), [1], [1], [1.0])
        assert ewise_mult(a, b).nnz == 0

    def test_custom_op(self):
        a = CSR.from_coo((1, 2), [0, 0], [0, 1], [5.0, 2.0])
        b = CSR.from_coo((1, 2), [0, 0], [0, 1], [3.0, 7.0])
        m = ewise_mult(a, b, op=np.maximum)
        assert np.array_equal(m.data, [5.0, 7.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ewise_mult(CSR.empty((2, 2)), CSR.empty((2, 3)))

    def test_empty_operand(self):
        a = random_csr(5, 5, 2, seed=3)
        assert ewise_mult(a, CSR.empty((5, 5))).nnz == 0
        assert ewise_mult(CSR.empty((5, 5)), a).nnz == 0


class TestEwiseAdd:
    def test_matches_scipy(self):
        a = random_csr(20, 15, 4, seed=4)
        b = random_csr(20, 15, 4, seed=5)
        want = CSR.from_scipy((a.to_scipy() + b.to_scipy()).tocsr())
        assert_csr_equal(ewise_add(a, b), want)

    def test_generic_op_union_semantics(self):
        a = CSR.from_coo((1, 3), [0, 0], [0, 1], [2.0, 3.0])
        b = CSR.from_coo((1, 3), [0, 0], [1, 2], [10.0, 4.0])
        m = ewise_add(a, b, op=np.maximum)
        assert np.array_equal(m.to_dense(), [[2.0, 10.0, 4.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ewise_add(CSR.empty((2, 2)), CSR.empty((3, 2)))


class TestMaskPattern:
    def test_keeps_only_masked(self):
        a = random_csr(15, 15, 4, seed=6)
        m = random_csr(15, 15, 4, seed=7)
        kept = mask_pattern(a, m)
        want = CSR.from_scipy(a.to_scipy().multiply(m.pattern().to_scipy()).tocsr())
        assert_csr_equal(kept, want)

    def test_mask_values_ignored(self):
        a = CSR.from_coo((1, 2), [0, 0], [0, 1], [3.0, 4.0])
        m = CSR.from_coo((1, 2), [0], [1], [99.0])
        kept = mask_pattern(a, m)
        assert kept.nnz == 1
        assert kept.to_dense()[0, 1] == 4.0

    def test_complement_partition(self):
        """mask(X, M) + mask(X, !M) == X — the complement identity."""
        a = random_csr(20, 20, 5, seed=8)
        m = random_csr(20, 20, 5, seed=9)
        inside = mask_pattern(a, m)
        outside = mask_pattern(a, m, complement=True)
        assert inside.nnz + outside.nnz == a.nnz
        assert_csr_equal(ewise_add(inside, outside), a)

    def test_empty_mask_complement_keeps_all(self):
        a = random_csr(6, 6, 2, seed=10)
        assert_csr_equal(mask_pattern(a, CSR.empty((6, 6)), complement=True), a)

    def test_empty_mask_keeps_none(self):
        a = random_csr(6, 6, 2, seed=11)
        assert mask_pattern(a, CSR.empty((6, 6))).nnz == 0


class TestReductions:
    def test_reduce_sum(self):
        a = random_csr(10, 10, 3, seed=12)
        assert reduce_sum(a) == pytest.approx(a.to_dense().sum())

    def test_row_reduce_add(self):
        a = random_csr(10, 10, 3, seed=13)
        assert np.allclose(row_reduce(a), a.to_dense().sum(axis=1))

    def test_row_reduce_empty(self):
        assert np.array_equal(row_reduce(CSR.empty((4, 4))), np.zeros(4))


class TestPatternSetOps:
    def test_union_intersection_difference_consistency(self):
        a = random_csr(18, 18, 4, seed=14)
        b = random_csr(18, 18, 4, seed=15)
        u = pattern_union(a, b)
        i = pattern_intersection(a, b)
        d_ab = pattern_difference(a, b)
        d_ba = pattern_difference(b, a)
        # |A u B| = |A| + |B| - |A n B|
        assert u.nnz == a.nnz + b.nnz - i.nnz
        # A = (A \ B) u (A n B)
        assert d_ab.nnz + i.nnz == a.nnz
        assert d_ba.nnz + i.nnz == b.nnz

    def test_nnz_overlap(self):
        a = CSR.from_coo((2, 2), [0, 1], [0, 1], [1.0, 1.0])
        b = CSR.from_coo((2, 2), [0, 1], [0, 0], [1.0, 1.0])
        assert nnz_overlap(a, b) == 1


class TestCSC:
    def test_from_csr_columns(self):
        a = random_csr(10, 7, 3, seed=16)
        c = CSC.from_csr(a)
        dense = a.to_dense()
        for j in range(7):
            rows, vals = c.col(j)
            col = np.zeros(10)
            col[rows] = vals
            assert np.allclose(col, dense[:, j])

    def test_roundtrip(self):
        a = random_csr(10, 7, 3, seed=17)
        assert_csr_equal(CSC.from_csr(a).to_csr(), a)

    def test_col_nnz(self):
        a = random_csr(10, 7, 3, seed=18)
        c = CSC.from_csr(a)
        assert np.array_equal(c.col_nnz(), (a.to_dense() != 0).sum(axis=0))

    def test_to_dense(self):
        a = random_csr(6, 5, 2, seed=19)
        assert np.allclose(CSC.from_csr(a).to_dense(), a.to_dense())

    def test_shape_validation(self):
        a = random_csr(4, 5, 2, seed=20)
        with pytest.raises(ValueError, match="incompatible"):
            CSC((5, 5), a)


class TestDCSR:
    def test_roundtrip(self):
        from repro.sparse import DCSR

        a = random_csr(50, 40, 2, seed=30)
        d = DCSR.from_csr(a)
        assert_csr_equal(d.to_csr(), a)

    def test_hypersparse_storage_win(self):
        from repro.sparse import DCSR

        # 10 nonzeros in a 100000-row matrix
        a = CSR.from_coo(
            (100000, 100),
            np.arange(0, 100000, 10000),
            np.arange(10),
            np.ones(10),
        )
        d = DCSR.from_csr(a)
        assert d.is_hypersparse()
        assert d.nzr == 10
        csr_words = a.nrows + 1 + 2 * a.nnz
        assert d.storage_words() < csr_words / 1000

    def test_row_lookup(self):
        from repro.sparse import DCSR

        a = random_csr(30, 30, 2, seed=31)
        d = DCSR.from_csr(a)
        for i in range(30):
            c1, v1 = a.sort_indices().row(i)
            c2, v2 = d.row(i)
            assert np.array_equal(c1, c2)
            assert np.array_equal(v1, v2)

    def test_iter_nonempty_skips_empty(self):
        from repro.sparse import DCSR

        a = CSR.from_coo((10, 10), [2, 7], [1, 3], [1.0, 2.0])
        d = DCSR.from_csr(a)
        visited = [i for i, _, _ in d.iter_nonempty_rows()]
        assert visited == [2, 7]

    def test_check_rejects_malformed(self):
        from repro.sparse import DCSR

        with pytest.raises(ValueError, match="strictly increasing"):
            DCSR((5, 5), np.array([2, 1]), np.array([0, 1, 2]),
                 np.array([0, 1]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="nonempty"):
            DCSR((5, 5), np.array([1, 2]), np.array([0, 0, 1]),
                 np.array([0]), np.array([1.0]))

    def test_empty_matrix(self):
        from repro.sparse import DCSR

        d = DCSR.from_csr(CSR.empty((5, 5)))
        assert d.nzr == 0 and d.nnz == 0
        assert d.to_csr().nnz == 0
