"""Regression pins for the machine model.

The cost model is calibrated code: innocuous-looking edits to its constants
or formulas can silently move the Figure-7 regime boundaries and flip the
paper-shape assertions in benchmarks/.  These tests pin the *regime
structure* (not exact cycle counts) of the current calibration so a model
change fails loudly here first.

If you change the model deliberately, re-derive the expected grids with::

    python -m repro.bench --figure 7

and update the pins together with EXPERIMENTS.md.
"""

import pytest

from repro.bench import fig07_density_grid
from repro.machine import HASWELL


@pytest.fixture(scope="module")
def grid():
    return fig07_density_grid(n=4096, degrees=(1, 2, 4, 8, 16, 32, 64),
                              machine=HASWELL)


FAMILY = {
    "Inner-1P": "pull",
    "MSA-1P": "accum",
    "Hash-1P": "accum",
    "MCA-1P": "accum",
    "Heap-1P": "heap",
    "HeapDot-1P": "heap",
}


class TestFigure7RegimePins:
    def test_pull_region(self, grid):
        """The mask-much-sparser-than-inputs wedge belongs to Inner."""
        for d_in, d_m in [(16, 1), (32, 1), (64, 1), (32, 2), (64, 2),
                          (64, 4), (64, 8)]:
            assert FAMILY[grid.winners[(d_in, d_m)]] == "pull", (d_in, d_m)

    def test_heap_region(self, grid):
        """The inputs-much-sparser-than-mask corner belongs to the heaps."""
        for d_in, d_m in [(1, 8), (1, 16), (1, 32), (1, 64)]:
            assert FAMILY[grid.winners[(d_in, d_m)]] == "heap", (d_in, d_m)

    def test_accumulator_region(self, grid):
        """The comparable-density band belongs to the accumulators."""
        for d_in, d_m in [(8, 8), (16, 16), (32, 32), (64, 64),
                          (8, 16), (16, 32), (8, 32)]:
            assert FAMILY[grid.winners[(d_in, d_m)]] == "accum", (d_in, d_m)

    def test_every_cell_has_winner(self, grid):
        assert len(grid.winners) == 49
        assert set(grid.winners.values()) <= set(FAMILY)


class TestTotalCyclePins:
    """Order-of-magnitude pins on modeled makespan seconds (32 threads):
    a ~10x drift in either direction means the calibration moved
    materially."""

    def test_msa_reference_point(self, grid):
        cell = grid.times[(16, 16)]
        assert 2e-5 < cell["MSA-1P"] < 2e-3, cell["MSA-1P"]

    def test_relative_ordering_stable(self, grid):
        cell = grid.times[(64, 1)]
        assert cell["Inner-1P"] * 3 < cell["MSA-1P"]
        cell = grid.times[(1, 64)]
        assert min(cell["Heap-1P"], cell["HeapDot-1P"]) < cell["Hash-1P"]
