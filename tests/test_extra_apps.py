"""Tests for the extension applications: Markov clustering and tree-based
extreme multi-label inference (the other masked-SpGEMM uses the paper's
intro and Section 2 cite)."""

import numpy as np
import pytest

from repro.apps import (
    beam_search_inference,
    exhaustive_inference,
    markov_clustering,
    random_label_tree,
)
from repro.apps.tree_inference import LabelTree
from repro.graphs import block_diagonal_dense, erdos_renyi, small_world
from repro.machine import OpCounter
from repro.sparse import CSR


class TestMarkovClustering:
    def test_finds_planted_blocks(self):
        g = block_diagonal_dense(4, 12, seed=1, fill=0.8)
        res = markov_clustering(g)
        assert res.converged
        assert len(res.clusters) == 4
        for c in res.clusters:
            # every cluster stays inside one planted block
            assert len(set(int(v) // 12 for v in c)) == 1

    def test_labels_partition_vertices(self):
        g = block_diagonal_dense(3, 10, seed=2, fill=0.7)
        res = markov_clustering(g)
        assert res.labels.shape == (30,)
        covered = np.concatenate(res.clusters)
        assert sorted(covered.tolist()) == list(range(30))

    def test_selective_expansion_agrees_on_blocks(self):
        g = block_diagonal_dense(4, 10, seed=3, fill=0.8)
        exact = markov_clustering(g)
        sel = markov_clustering(g, selective_expansion=True)
        assert len(sel.clusters) == len(exact.clusters)
        # same partition up to relabeling
        mapping = {}
        for v in range(g.nrows):
            key = exact.labels[v]
            mapping.setdefault(key, sel.labels[v])
            assert mapping[key] == sel.labels[v]

    def test_disconnected_components_stay_separate(self):
        # two disjoint triangles
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        rows = [u for u, v in edges] + [v for u, v in edges]
        cols = [v for u, v in edges] + [u for u, v in edges]
        g = CSR.from_coo((6, 6), np.array(rows), np.array(cols),
                         np.ones(len(rows)))
        res = markov_clustering(g)
        assert res.labels[0] == res.labels[1] == res.labels[2]
        assert res.labels[3] == res.labels[4] == res.labels[5]
        assert res.labels[0] != res.labels[3]

    def test_inflation_sharpens(self):
        """Higher inflation produces at least as many clusters."""
        g = small_world(60, k=6, p=0.1, seed=4)
        lo = markov_clustering(g, inflation=1.3, max_iters=30)
        hi = markov_clustering(g, inflation=3.0, max_iters=30)
        assert len(hi.clusters) >= len(lo.clusters)

    def test_flops_recorded(self):
        g = block_diagonal_dense(2, 8, seed=5)
        res = markov_clustering(g)
        assert res.flops > 0
        assert res.iterations >= 1

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            markov_clustering(CSR.empty((3, 4)))


class TestLabelTree:
    def test_random_tree_shape(self):
        tree = random_label_tree(100, branching=3, depth=4, seed=1)
        assert tree.depth == 4
        assert [lvl.nrows for lvl in tree.levels] == [3, 9, 27, 81]
        assert tree.n_labels == 81
        tree.validate()

    def test_validate_rejects_bad_children(self):
        tree = random_label_tree(50, branching=2, depth=2, seed=2)
        tree.children[0][0] = np.array([0])  # drops a child
        with pytest.raises(ValueError, match="partition"):
            tree.validate()

    def test_validate_rejects_length_mismatch(self):
        tree = random_label_tree(50, branching=2, depth=3, seed=3)
        bad = LabelTree(tree.levels, tree.children[:1])
        with pytest.raises(ValueError, match="consecutive"):
            bad.validate()


class TestTreeInference:
    @pytest.fixture(scope="class")
    def setup(self):
        tree = random_label_tree(300, branching=4, depth=3, seed=7)
        x = erdos_renyi(12, 300, 20, seed=8)
        return tree, x

    def test_full_beam_equals_exhaustive(self, setup):
        tree, x = setup
        full = beam_search_inference(tree, x, beam_width=tree.n_labels, top_k=4)
        ex = exhaustive_inference(tree, x, top_k=4)
        assert np.allclose(full.scores, ex.scores)

    @pytest.mark.parametrize("algo", ["msa", "hash", "mca"])
    def test_algorithms_agree(self, algo, setup):
        tree, x = setup
        base = beam_search_inference(tree, x, beam_width=3, top_k=3, algo="msa")
        got = beam_search_inference(tree, x, beam_width=3, top_k=3, algo=algo)
        assert np.allclose(got.scores, base.scores)
        assert np.array_equal(got.labels, base.labels)

    def test_narrow_beam_saves_flops(self, setup):
        tree, x = setup
        narrow = beam_search_inference(tree, x, beam_width=2, top_k=3)
        wide = beam_search_inference(tree, x, beam_width=16, top_k=3)
        assert narrow.masked_flops < wide.masked_flops

    def test_exhaustive_bounds_every_beam(self, setup):
        """The exhaustive optimum upper-bounds any beam's best score.
        (Note: beam search is NOT monotone in beam width — a wider beam can
        evict a narrow beam's winning path — so only the exhaustive bound
        is a real invariant.)"""
        tree, x = setup
        ex = exhaustive_inference(tree, x, top_k=1)
        for width in (1, 2, 4, 16):
            res = beam_search_inference(tree, x, beam_width=width, top_k=1)
            assert np.all(res.scores[:, 0] <= ex.scores[:, 0] + 1e-12), width

    def test_recall_reasonable_at_small_beam(self, setup):
        tree, x = setup
        ex = exhaustive_inference(tree, x, top_k=3)
        res = beam_search_inference(tree, x, beam_width=4, top_k=3)
        recall = np.isin(res.labels, ex.labels).mean()
        assert recall > 0.5

    def test_labels_in_range(self, setup):
        tree, x = setup
        res = beam_search_inference(tree, x, beam_width=2, top_k=5)
        valid = res.labels[res.labels >= 0]
        assert valid.max(initial=0) < tree.n_labels


class TestSparseDNN:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.apps import random_sparse_dnn

        net = random_sparse_dnn(neurons=400, depth=3, fan_in=10, seed=3)
        x = erdos_renyi(12, 400, 20, seed=4)
        return net, x

    def test_network_shape(self, setup):
        net, _ = setup
        assert net.depth == 3
        assert net.neurons == 400
        net.validate()

    def test_validate_rejects_mismatched(self):
        from repro.apps import SparseDNN
        from repro.sparse import CSR

        with pytest.raises(ValueError, match="bias"):
            SparseDNN([CSR.empty((4, 4))], []).validate()
        with pytest.raises(ValueError, match="square"):
            SparseDNN([CSR.empty((4, 5))], [0.0]).validate()

    def test_unbounded_topk_equals_exact(self, setup):
        from repro.apps import sparse_dnn_forward, sparse_dnn_forward_topk

        net, x = setup
        exact = sparse_dnn_forward(net, x)
        full = sparse_dnn_forward_topk(net, x, top_k=10**9)
        assert full.activations.drop_zeros(1e-12).equals(
            exact.activations.drop_zeros(1e-12)
        )

    def test_relu_kills_negatives(self, setup):
        from repro.apps import sparse_dnn_forward

        net, x = setup
        res = sparse_dnn_forward(net, x)
        assert np.all(res.activations.data >= 0)

    def test_budget_saves_flops(self, setup):
        from repro.apps import sparse_dnn_forward, sparse_dnn_forward_topk

        net, x = setup
        exact = sparse_dnn_forward(net, x)
        budget = sparse_dnn_forward_topk(net, x, top_k=8)
        assert budget.flops < exact.counter.flops
        # per-sample activation count bounded by the budget path
        assert max(budget.activations.row_nnz(), default=0) <= 8 * 10  # fan-out bound

    def test_budget_monotone_in_k(self, setup):
        from repro.apps import sparse_dnn_forward_topk

        net, x = setup
        f_small = sparse_dnn_forward_topk(net, x, top_k=4).flops
        f_big = sparse_dnn_forward_topk(net, x, top_k=32).flops
        assert f_small <= f_big

    @pytest.mark.parametrize("algo", ["msa", "hash", "mca"])
    def test_algorithms_agree(self, algo, setup):
        from repro.apps import sparse_dnn_forward_topk

        net, x = setup
        base = sparse_dnn_forward_topk(net, x, top_k=8, algo="msa")
        got = sparse_dnn_forward_topk(net, x, top_k=8, algo=algo)
        assert got.activations.equals(base.activations)

    def test_empty_input(self, setup):
        from repro.apps import sparse_dnn_forward
        from repro.sparse import CSR

        net, _ = setup
        res = sparse_dnn_forward(net, CSR.empty((4, 400)))
        assert res.activations.nnz == 0
