"""Tests for the benchmark harness: performance profiles, reporting,
scheme runner and (smoke-level) the per-figure experiments."""

import math

import numpy as np
import pytest

from repro.bench import (
    ALL_SCHEMES,
    OUR_SCHEMES,
    OUR_SCHEMES_1P,
    SSGB_SCHEMES,
    measured_seconds,
    modeled_seconds,
    performance_profile,
    render_grid,
    render_profile,
    render_series,
    render_table,
    run_cases,
    scheme_by_name,
    tc_cases,
)
from repro.graphs import erdos_renyi_graph
from repro.machine import HASWELL


class TestPerformanceProfile:
    def test_basic_profile(self):
        times = {
            "fast": {"c1": 1.0, "c2": 2.0},
            "slow": {"c1": 2.0, "c2": 8.0},
        }
        p = performance_profile(times)
        assert p.fraction_best("fast") == 1.0
        assert p.fraction_best("slow") == 0.0
        # slow is within 2x on c1 only
        rho = p.rho("slow")
        assert rho[0] == 0.0
        assert rho[-1] == 1.0

    def test_ties_count_for_both(self):
        times = {"a": {"c": 1.0}, "b": {"c": 1.0}}
        p = performance_profile(times)
        assert p.fraction_best("a") == 1.0
        assert p.fraction_best("b") == 1.0

    def test_inf_for_unsupported(self):
        times = {"a": {"c1": 1.0, "c2": 1.0}, "b": {"c1": 2.0, "c2": float("inf")}}
        p = performance_profile(times)
        assert p.fraction_best("b") == 0.0
        assert p.rho("b")[-1] <= 0.5

    def test_ranking_by_area(self):
        times = {
            "best": {"c1": 1.0, "c2": 1.0},
            "mid": {"c1": 1.5, "c2": 1.5},
            "worst": {"c1": 10.0, "c2": 10.0},
        }
        p = performance_profile(times)
        assert p.ranking() == ["best", "mid", "worst"]

    def test_rejects_all_inf_case(self):
        with pytest.raises(ValueError, match="no finite"):
            performance_profile({"a": {"c": float("inf")}})

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            performance_profile({"a": {"c": 0.0}})

    def test_monotone_curves(self):
        rng = np.random.default_rng(0)
        times = {
            f"s{i}": {f"c{j}": float(rng.random() + 0.1) for j in range(20)}
            for i in range(5)
        }
        p = performance_profile(times)
        for s in p.schemes:
            rho = p.rho(s)
            assert np.all(np.diff(rho) >= 0)
            assert 0 <= rho[0] <= 1 and rho[-1] <= 1


class TestReporting:
    def test_render_table(self):
        out = render_table(["x", "y"], [[1, 2.5], ["a", 3e-7]], title="T")
        assert "T" in out and "x" in out and "2.5" in out and "3.000e-07" in out

    def test_render_profile(self):
        p = performance_profile({"a": {"c": 1.0}, "b": {"c": 3.0}})
        out = render_profile(p, title="profiles")
        assert "profiles" in out
        assert "tau=1" in out
        assert "a" in out and "b" in out

    def test_render_series_handles_nan(self):
        out = render_series("x", [1, 2], {"s": [1.0, float("nan")]})
        assert "-" in out

    def test_render_grid(self):
        out = render_grid("r", "c", [1, 2], [3, 4], {(1, 3): "A", (2, 4): "B"})
        assert "A" in out and "B" in out and "?" in out


class TestSchemes:
    def test_fourteen_schemes_like_the_paper(self):
        # 12 ours (6 algorithms x 1P/2P) + 2 SS:GB
        assert len(OUR_SCHEMES) == 12
        assert len(SSGB_SCHEMES) == 2
        assert len(ALL_SCHEMES) == 14
        assert len(OUR_SCHEMES_1P) == 6

    def test_scheme_names(self):
        names = {s.name for s in ALL_SCHEMES}
        for expect in ("MSA-1P", "MSA-2P", "Inner-1P", "Hash-2P", "MCA-1P",
                       "Heap-1P", "HeapDot-2P", "SS:DOT", "SS:SAXPY"):
            assert expect in names

    def test_scheme_by_name(self):
        s = scheme_by_name("MSA-1P")
        assert s.algo == "msa" and s.phases == 1

    def test_complement_support_flags(self):
        assert not scheme_by_name("Inner-1P").supports_complement
        assert not scheme_by_name("MCA-2P").supports_complement
        assert scheme_by_name("MSA-1P").supports_complement
        assert scheme_by_name("Heap-1P").supports_complement


class TestRunner:
    @pytest.fixture(scope="class")
    def cases(self):
        g = erdos_renyi_graph(64, 5, seed=1)
        return tc_cases({"g64": g})

    def test_modeled_seconds_positive(self, cases):
        for s in ALL_SCHEMES:
            t = modeled_seconds(s, cases["g64"], machine=HASWELL)
            assert t > 0 and math.isfinite(t)

    def test_measured_seconds_positive(self, cases):
        t = measured_seconds(scheme_by_name("MSA-1P"), cases["g64"])
        assert t > 0

    def test_modeled_threads_speedup(self, cases):
        s = scheme_by_name("MSA-1P")
        t1 = modeled_seconds(s, cases["g64"], threads=1)
        t8 = modeled_seconds(s, cases["g64"], threads=8)
        assert t8 < t1

    def test_run_cases_model(self, cases):
        times = run_cases(cases, OUR_SCHEMES_1P, mode="model")
        assert set(times) == {s.name for s in OUR_SCHEMES_1P}
        for row in times.values():
            assert set(row) == {"g64"}
            assert row["g64"] > 0

    def test_run_cases_measured_subset(self, cases):
        fast = [s for s in OUR_SCHEMES_1P if s.fast]
        times = run_cases(cases, fast, mode="measured")
        for row in times.values():
            assert row["g64"] > 0

    def test_complement_cases_get_inf(self):
        from repro.bench import bc_cases

        g = erdos_renyi_graph(48, 4, seed=2)
        cases = bc_cases({"g": g}, batch_size=8)
        times = run_cases(cases, [scheme_by_name("Inner-1P"),
                                  scheme_by_name("MSA-1P")], mode="model")
        assert times["Inner-1P"]["g"] == float("inf")
        assert math.isfinite(times["MSA-1P"]["g"])

    def test_bad_mode(self, cases):
        with pytest.raises(ValueError, match="mode"):
            run_cases(cases, OUR_SCHEMES_1P, mode="psychic")


class TestExperimentSmoke:
    """Tiny-size smoke runs of each figure experiment (full-size runs live
    in benchmarks/)."""

    def test_fig07(self):
        from repro.bench import fig07_density_grid

        res = fig07_density_grid(n=256, degrees=(1, 8, 32))
        assert len(res.winners) == 9
        assert res.winner_set() <= {s.name for s in OUR_SCHEMES_1P}

    def test_fig08(self):
        from repro.bench import fig08_tc_profiles

        prof = fig08_tc_profiles(suite=["er-sparse-s", "er-mid-s"])
        assert len(prof.cases) == 2

    def test_fig10(self):
        from repro.bench import fig10_tc_rmat_scaling

        res = fig10_tc_rmat_scaling(scales=(5, 6))
        assert all(len(v) == 2 for v in res.series.values())

    def test_fig11(self):
        from repro.bench import fig11_tc_strong_scaling

        res = fig11_tc_strong_scaling(scale=7, thread_counts=[1, 2, 4])
        for curve in res.series.values():
            assert curve[0] == pytest.approx(1.0)

    def test_fig15_nan_for_inner(self):
        from repro.bench import fig15_bc_rmat_scaling
        from repro.bench.runner import scheme_by_name as by_name

        res = fig15_bc_rmat_scaling(
            scales=(5,), batch_size=4,
            schemes=[by_name("Inner-1P"), by_name("MSA-1P")],
        )
        assert math.isnan(res.series["Inner-1P"][0])
        assert math.isfinite(res.series["MSA-1P"][0])


class TestCLI:
    def test_cli_single_figure(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--figure", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Inner-1P" in out

    def test_cli_requires_figure_or_all(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_cli_machine_option(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--figure", "11", "--machine", "knl"])
        assert rc == 0
        assert "knl" in capsys.readouterr().out


class TestJSONPersistence:
    def test_roundtrip(self, tmp_path):
        import numpy as np

        from repro.bench import load_json, save_json

        payload = {
            "series": {"MSA-1P": [1.0, np.float64(2.5), float("nan")]},
            ("grid", 3): "winner",
            "arr": np.arange(3),
        }
        path = tmp_path / "result.json"
        save_json(path, payload)
        back = load_json(path)
        assert back["series"]["MSA-1P"][:2] == [1.0, 2.5]
        assert back["series"]["MSA-1P"][2] is None  # NaN -> null
        assert back["grid,3"] == "winner"
        assert back["arr"] == [0, 1, 2]

    def test_experiment_payload(self, tmp_path):
        from repro.bench import (
            fig07_density_grid,
            load_json,
            save_json,
        )

        res = fig07_density_grid(n=128, degrees=(1, 8))
        path = tmp_path / "fig7.json"
        save_json(path, {"winners": res.winners, "n": res.n})
        back = load_json(path)
        assert back["n"] == 128
        assert len(back["winners"]) == 4
