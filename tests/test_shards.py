"""Sharded masked-SpGEMM suite: planner grids, cell binning, equivalence.

The shard grid (``docs/sharding.md``) tiles the output into DCSR row
blocks × DCSC column panels and dispatches one task per *nonempty* mask
cell.  The contract under test:

* the planner resolves the ``shards`` knob (tuple / ``"auto"`` / explicit
  :class:`ShardGrid`) and records a cell census in the plan notes;
* sharded execution is **bit-for-bit identical** to the unsharded path on
  all three backends, for every algorithm, complement masks and 2P plans;
* :class:`OpCounter` totals are identical too for the algorithms whose
  counters are additive under row/column slicing (inner/msa/mca/esc —
  hash sizes its table per flop-budget batch and the heap schemes' merge
  costs depend on row extent, so only their *outputs* are asserted);
* mask-empty cells are provably pruned before dispatch (task count <
  grid size, visible in the ``engine.shard`` span and the plan notes);
* sessions reuse unchanged shard segments across calls
  (``segments_reused > 0``).

Carries both the ``shard`` and ``backend`` markers: CI's backend-smoke
job runs it alongside the backend-equivalence suite.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.core import ALL_ALGOS, masked_spgemm, supports_complement
from repro.engine import ExecutionSession, Planner, ShardGrid, plan
from repro.graphs import erdos_renyi, rmat
from repro.machine import HASWELL, OpCounter
from repro.observe import Tracer, set_tracer
from repro.parallel import active_segments, mask_cells, shutdown_pool
from repro.sparse import CSR, read_mtx

pytestmark = [pytest.mark.shard, pytest.mark.backend]

DATA = Path(__file__).parent.parent / "data"
WORKERS = 2
BACKENDS = ("serial", "thread", "process")

#: algorithms whose OpCounter totals are invariant under the shard
#: decomposition (see module docstring for why hash/heap/heapdot are not)
ADDITIVE_COUNTER_ALGOS = ("inner", "msa", "mca", "esc")


def _inputs():
    karate = read_mtx(DATA / "karate.mtx")
    er = erdos_renyi(48, 48, 3, seed=7, values="uniform")
    rm = rmat(6, seed=3)
    return [("karate", karate), ("er", er), ("rmat", rm)]


@pytest.fixture(scope="module", params=_inputs(), ids=lambda p: p[0])
def graph(request):
    return request.param[1]


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pool()
    assert active_segments() == ()


def _same(got: CSR, ref: CSR, label: str = "") -> None:
    # CSR defines no __eq__; compare the canonical arrays bitwise
    assert got.shape == ref.shape, label
    assert np.array_equal(got.indptr, ref.indptr), label
    assert np.array_equal(got.indices, ref.indices), label
    assert np.array_equal(got.data, ref.data), label


# ----------------------------------------------------------------------
# ShardGrid + planner resolution
# ----------------------------------------------------------------------
class TestShardGrid:
    def test_regular_grid_spans_shape(self):
        g = ShardGrid.regular((10, 7), 3, 2)
        assert g.nrb == 3 and g.ncp == 2 and g.ncells == 6
        assert g.row_bounds[0] == 0 and g.row_bounds[-1] == 10
        assert g.col_bounds[0] == 0 and g.col_bounds[-1] == 7
        assert sum(hi - lo for lo, hi in g.row_blocks()) == 10
        assert sum(hi - lo for lo, hi in g.col_panels()) == 7

    def test_grid_is_hashable_plan_cache_key_material(self):
        a = ShardGrid.regular((10, 10), 2, 2)
        b = ShardGrid.regular((10, 10), 2, 2)
        assert a == b and hash(a) == hash(b)
        assert a != ShardGrid.regular((10, 10), 2, 3)

    @pytest.mark.parametrize(
        "row_bounds,col_bounds,match",
        [
            ((0,), (0, 10), "at least one block"),
            ((1, 10), (0, 10), r"span \[0, 10\]"),
            ((0, 9), (0, 10), r"span \[0, 10\]"),
            ((0, 7, 3, 10), (0, 10), "non-decreasing"),
            ((0, 10), (0, 11), r"span \[0, 10\]"),
        ],
    )
    def test_validate_rejects_bad_bounds(self, row_bounds, col_bounds, match):
        with pytest.raises(ValueError, match=match):
            ShardGrid(row_bounds, col_bounds).validate((10, 10))

    def test_empty_blocks_are_legal(self):
        # non-decreasing allows zero-height blocks (adaptive grids may
        # emit them); the executor simply finds their mask cells empty
        ShardGrid((0, 5, 5, 10), (0, 10)).validate((10, 10))


class TestPlannerSharding:
    def test_tuple_grid(self, graph):
        pl = plan(graph, graph, graph, algo="msa", shards=(3, 2))
        assert pl.shards is not None
        assert (pl.shards.nrb, pl.shards.ncp) == (3, 2)
        assert any("cells carry mask entries" in n for n in pl.notes)
        assert "shard grid 3x2" in pl.explain()

    def test_explicit_grid_used_verbatim(self, graph):
        n = graph.nrows
        grid = ShardGrid((0, 1, n), (0, n))
        pl = plan(graph, graph, graph, algo="msa", shards=grid)
        assert pl.shards == grid

    def test_one_by_one_degenerates_to_unsharded(self, graph):
        pl = plan(graph, graph, graph, algo="msa", shards=(1, 1))
        assert pl.shards is None
        assert any("degenerates" in n for n in pl.notes)

    def test_auto_respects_memory_budget(self, graph):
        roomy = Planner(HASWELL)
        pl = roomy.plan(graph, graph, graph, shards="auto")
        assert pl.shards is None  # tiny graphs fit the default 256 MiB
        tiny = Planner(
            dataclasses.replace(HASWELL, shard_memory_budget_bytes=64)
        )
        pl = tiny.plan(graph, graph, graph, shards="auto")
        assert pl.shards is not None
        assert pl.shards.ncells > 1
        assert any("sharding auto" in n for n in pl.notes)

    def test_bad_shards_knob_rejected(self, graph):
        with pytest.raises(ValueError, match="shards must be"):
            plan(graph, graph, graph, shards="always")

    def test_shards_exclusive_with_panel_width(self, graph):
        with pytest.raises(ValueError, match="mutually exclusive"):
            plan(graph, graph, graph, algo="msa", shards=(2, 2), panel_width=8)

    def test_complement_census_notes_no_pruning(self, graph):
        pl = plan(
            graph, graph, graph, algo="msa", shards=(2, 2), complement=True
        )
        assert any("complemented mask" in n and "all" in n for n in pl.notes)

    def test_plan_as_dict_round_trips_grid(self, graph):
        pl = plan(graph, graph, graph, algo="msa", shards=(3, 2))
        d = pl.as_dict()["shards"]
        assert d["grid"] == [3, 2]
        assert d["row_bounds"] == list(pl.shards.row_bounds)


# ----------------------------------------------------------------------
# mask_cells binning
# ----------------------------------------------------------------------
class TestMaskCells:
    def test_cells_partition_the_mask(self, graph):
        grid = ShardGrid.regular(graph.shape, 3, 2)
        cells = mask_cells(graph, grid)
        assert sum(c.nnz for c in cells.values()) == graph.nnz
        for (i, j), cell in cells.items():
            assert cell.nnz > 0
            lo_r, hi_r = grid.row_bounds[i], grid.row_bounds[i + 1]
            lo_c, hi_c = grid.col_bounds[j], grid.col_bounds[j + 1]
            assert cell.shape == (hi_r - lo_r, hi_c - lo_c)
            rows, cols, _ = cell.to_csr().to_coo()
            assert rows.size == 0 or (rows.min() >= 0 and rows.max() < hi_r - lo_r)
            assert cols.size == 0 or (cols.min() >= 0 and cols.max() < hi_c - lo_c)

    def test_cells_reassemble_to_the_mask(self, graph):
        grid = ShardGrid.regular(graph.shape, 4, 3)
        cells = mask_cells(graph, grid)
        rs, cs, vs = [], [], []
        for (i, j), cell in cells.items():
            r, c, v = cell.to_csr().to_coo()
            rs.append(r + grid.row_bounds[i])
            cs.append(c + grid.col_bounds[j])
            vs.append(v)
        back = CSR.from_coo(
            graph.shape,
            np.concatenate(rs), np.concatenate(cs), np.concatenate(vs),
        )
        _same(back, graph.sort_indices())

    def test_empty_mask_has_no_cells(self):
        grid = ShardGrid.regular((8, 8), 2, 2)
        assert mask_cells(CSR.empty((8, 8)), grid) == {}

    def test_block_diagonal_mask_touches_diagonal_cells_only(self):
        n = 12
        rows = np.arange(n)
        m = CSR.from_coo((n, n), rows, rows, np.ones(n))
        grid = ShardGrid.regular((n, n), 3, 3)
        cells = mask_cells(m, grid)
        assert set(cells) == {(0, 0), (1, 1), (2, 2)}


# ----------------------------------------------------------------------
# execution equivalence
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algo", ALL_ALGOS)
    def test_all_algos_bitwise(self, algo, backend, graph):
        ref_counter = OpCounter()
        ref = masked_spgemm(graph, graph, graph, algo=algo, counter=ref_counter)
        got_counter = OpCounter()
        got = masked_spgemm(
            graph, graph, graph, algo=algo, counter=got_counter,
            shards=(3, 2), backend=backend,
        )
        _same(got, ref, f"{algo}/{backend}")
        if algo in ADDITIVE_COUNTER_ALGOS:
            assert got_counter == ref_counter, f"{algo}/{backend}"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_complement_bitwise(self, backend, graph):
        ref = masked_spgemm(graph, graph, graph, algo="msa", complement=True)
        got = masked_spgemm(
            graph, graph, graph, algo="msa", complement=True,
            shards=(2, 2), backend=backend,
        )
        _same(got, ref, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_phase_bitwise(self, backend, graph):
        ref = masked_spgemm(graph, graph, graph, algo="msa", phases=2)
        got = masked_spgemm(
            graph, graph, graph, algo="msa", phases=2,
            shards=(3, 2), backend=backend,
        )
        _same(got, ref, backend)

    def test_auto_algo_with_shards(self, graph):
        ref = masked_spgemm(graph, graph, graph, algo="auto")
        got = masked_spgemm(graph, graph, graph, algo="auto", shards=(3, 2))
        _same(got, ref)

    def test_irregular_explicit_grid(self, graph):
        n, m = graph.shape
        grid = ShardGrid((0, 1, max(1, n // 3), n), (0, max(1, m // 4), m))
        ref = masked_spgemm(graph, graph, graph, algo="hash")
        got = masked_spgemm(graph, graph, graph, algo="hash", shards=grid)
        _same(got, ref)

    def test_rectangular_operands(self):
        rng = np.random.default_rng(5)
        def rand(n, m, k):
            return CSR.from_coo(
                (n, m), rng.integers(0, n, k), rng.integers(0, m, k),
                rng.random(k),
            )
        a, b, m = rand(30, 50, 200), rand(50, 20, 220), rand(30, 20, 150)
        for backend in BACKENDS:
            ref = masked_spgemm(a, b, m, algo="msa")
            got = masked_spgemm(
                a, b, m, algo="msa", shards=(4, 3), backend=backend
            )
            _same(got, ref, backend)

    def test_empty_mask_short_circuits(self, graph):
        got = masked_spgemm(
            graph, graph, CSR.empty(graph.shape), algo="msa", shards=(3, 2)
        )
        assert got.nnz == 0 and got.shape == graph.shape

    def test_more_blocks_than_rows_clamped(self):
        g = erdos_renyi(5, 5, 2, seed=11)
        ref = masked_spgemm(g, g, g, algo="msa")
        got = masked_spgemm(g, g, g, algo="msa", shards=(64, 64))
        _same(got, ref)

    def test_column_orientation_transposes_grid(self, graph):
        ref = masked_spgemm(graph, graph, graph, algo="msa")
        got = masked_spgemm(
            graph, graph, graph, algo="msa", orientation="column",
            shards=(3, 2),
        )
        _same(got, ref)


# ----------------------------------------------------------------------
# pruning proof + session shard reuse
# ----------------------------------------------------------------------
class TestPruningAndSessions:
    def test_empty_cells_pruned_before_dispatch(self):
        """A block-diagonal mask on a 3x3 grid dispatches 3 of 9 cells."""
        n = 30
        rows = np.arange(n)
        m = CSR.from_coo((n, n), rows, rows, np.ones(n))
        g = erdos_renyi(n, n, 4, seed=13, values="uniform")
        pl = plan(g, g, m, algo="msa", shards=(3, 3))
        assert any("6 pruned" in note for note in pl.notes)
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            got = masked_spgemm(g, g, m, algo="msa", shards=(3, 3))
        finally:
            set_tracer(prev)
        _same(got, masked_spgemm(g, g, m, algo="msa"))
        (shard_span,) = [sp for sp in tr.spans if sp.name == "engine.shard"]
        assert shard_span.attrs["cells"] == 9
        assert shard_span.attrs["nonempty_cells"] == 3
        assert shard_span.attrs["tasks"] == 3
        cell_spans = [sp for sp in tr.spans if sp.name == "parallel.shard"]
        assert len(cell_spans) == 3
        assert sorted(tuple(sp.attrs["cell"]) for sp in cell_spans) == [
            (0, 0), (1, 1), (2, 2),
        ]

    def test_complement_dispatches_every_cell(self):
        n = 30
        rows = np.arange(n)
        m = CSR.from_coo((n, n), rows, rows, np.ones(n))
        g = erdos_renyi(n, n, 4, seed=13, values="uniform")
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            got = masked_spgemm(
                g, g, m, algo="msa", complement=True, shards=(3, 3)
            )
        finally:
            set_tracer(prev)
        _same(got, masked_spgemm(g, g, m, algo="msa", complement=True))
        (shard_span,) = [sp for sp in tr.spans if sp.name == "engine.shard"]
        assert shard_span.attrs["tasks"] == 9

    def test_session_reuses_shard_segments(self):
        """Re-multiplying unchanged operands serves every shard from the
        session's segment registry — the k-truss fixed-point pattern."""
        g = rmat(6, seed=3)
        ref = masked_spgemm(g, g, g, algo="msa")
        with ExecutionSession() as ses:
            c1, c2 = OpCounter(), OpCounter()
            r1 = masked_spgemm(
                g, g, g, algo="msa", shards=(3, 2), backend="process",
                session=ses, counter=c1,
            )
            r2 = masked_spgemm(
                g, g, g, algo="msa", shards=(3, 2), backend="process",
                session=ses, counter=c2,
            )
            _same(r1, ref)
            _same(r2, ref)
            assert c1.segments_reused == 0  # cold: everything published
            assert c2.segments_reused > 0  # warm: shards served from cache
            stats = ses.stats()
            assert stats["shard_form_hits"] > 0  # DCSR/DCSC memo hit too
        assert active_segments() == ()

    def test_sessioned_ktruss_reuses_shards(self):
        from repro.apps import ktruss

        g = rmat(6, seed=3)
        base = ktruss(g, k=3)
        res = ktruss(g, k=3, algo="msa", shards=(2, 2), backend="process")
        _same(res.truss, base.truss)
        # the fixed-point iteration re-multiplies an unchanged adjacency:
        # its shard segments must come from the session registry
        assert res.counter.segments_reused > 0
        shutdown_pool()
        assert active_segments() == ()

    def test_values_only_rewrite_keeps_structure_segments(self):
        g = rmat(6, seed=3)
        g2 = CSR.from_segment_arrays(
            g.shape, g.indptr, g.indices, g.data * 2.0,
            sorted_indices=g.sorted_indices,
        )
        with ExecutionSession() as ses:
            c1, c2 = OpCounter(), OpCounter()
            masked_spgemm(
                g, g, g, algo="msa", shards=(2, 2), backend="process",
                session=ses, counter=c1,
            )
            got = masked_spgemm(
                g2, g, g, algo="msa", shards=(2, 2), backend="process",
                session=ses, counter=c2,
            )
            _same(got, masked_spgemm(g2, g, g, algo="msa"))
            # A's shard data segments were rewritten in place, not republished
            assert c2.bytes_republished > 0
            assert c2.segments_reused > 0  # B and the mask reused outright
        assert active_segments() == ()
