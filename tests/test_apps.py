"""Application tests: Triangle Counting, k-truss, Betweenness Centrality,
BFS — validated against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    betweenness_centrality,
    ktruss,
    multi_source_bfs,
    triangle_count,
    triangle_count_detail,
)
from repro.core import ALGOS, supports_complement
from repro.graphs import erdos_renyi_graph, rmat
from repro.machine import OpCounter
from repro.sparse import CSR

COMPLEMENT_ALGOS = [a for a in ALGOS if supports_complement(a)]


def _nx(g: CSR) -> nx.Graph:
    return nx.from_scipy_sparse_array(g.to_scipy())


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(120, 7, seed=42)


@pytest.fixture(scope="module")
def graph_nx(graph):
    return _nx(graph)


class TestTriangleCounting:
    def test_matches_networkx(self, graph, graph_nx):
        want = sum(nx.triangles(graph_nx).values()) // 3
        assert triangle_count(graph) == want

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_algorithms_agree(self, algo, graph, graph_nx):
        want = sum(nx.triangles(graph_nx).values()) // 3
        assert triangle_count(graph, algo=algo) == want

    def test_relabel_invariance(self, graph):
        assert triangle_count(graph, relabel=True) == triangle_count(
            graph, relabel=False
        )

    def test_permutation_invariance(self, graph):
        perm = np.random.default_rng(1).permutation(graph.nrows)
        assert triangle_count(graph.permute(perm)) == triangle_count(graph)

    def test_triangle_free_graph(self):
        # star graph has no triangles
        n = 20
        rows = np.zeros(n - 1, dtype=np.int64)
        cols = np.arange(1, n, dtype=np.int64)
        g = CSR.from_coo(
            (n, n),
            np.concatenate([rows, cols]),
            np.concatenate([cols, rows]),
            np.ones(2 * (n - 1)),
        )
        assert triangle_count(g) == 0

    def test_complete_graph(self):
        n = 10
        g = CSR.from_dense(np.ones((n, n)) - np.eye(n))
        assert triangle_count(g) == n * (n - 1) * (n - 2) // 6

    def test_detail_counters(self, graph):
        res = triangle_count_detail(graph)
        assert res.triangles == triangle_count(graph)
        assert res.counter.flops > 0
        assert res.spgemm_seconds >= 0
        assert res.l_nnz == graph.nnz // 2

    def test_two_phase_same_count(self, graph):
        assert triangle_count(graph, phases=2) == triangle_count(graph, phases=1)


class TestKTruss:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_networkx(self, k, graph, graph_nx):
        res = ktruss(graph, k)
        want = nx.k_truss(graph_nx, k)
        assert res.truss.nnz // 2 == want.number_of_edges()

    def test_truss_is_subgraph(self, graph):
        res = ktruss(graph, 4)
        from repro.sparse import pattern_difference

        extra = pattern_difference(res.truss, graph.pattern())
        assert extra.nnz == 0

    def test_truss_edges_have_support(self, graph):
        """Every edge of the k-truss is in >= k-2 triangles of the truss."""
        k = 4
        res = ktruss(graph, k)
        t = res.truss
        from repro.core import masked_spgemm
        from repro.semiring import PLUS_PAIR

        s = masked_spgemm(t, t, t, semiring=PLUS_PAIR)
        assert s.nnz == t.nnz
        assert np.all(s.data >= k - 2)

    def test_monotone_in_k(self, graph):
        e3 = ktruss(graph, 3).truss.nnz
        e4 = ktruss(graph, 4).truss.nnz
        e5 = ktruss(graph, 5).truss.nnz
        assert e3 >= e4 >= e5

    def test_k3_keeps_triangle_edges(self, graph, graph_nx):
        res = ktruss(graph, 3)
        want = nx.k_truss(graph_nx, 3)
        assert res.truss.nnz // 2 == want.number_of_edges()

    @pytest.mark.parametrize("algo", ["hash", "mca", "inner"])
    def test_algorithms_agree(self, algo, graph):
        base = ktruss(graph, 5).truss
        got = ktruss(graph, 5, algo=algo).truss
        assert got.equals(base)

    def test_flops_and_iterations_reported(self, graph):
        res = ktruss(graph, 5)
        assert res.iterations >= 1
        assert res.flops > 0
        assert len(res.edges_per_iter) == res.iterations
        # edge count must be non-increasing over iterations
        assert all(
            a >= b for a, b in zip(res.edges_per_iter, res.edges_per_iter[1:])
        )

    def test_k_validation(self, graph):
        with pytest.raises(ValueError, match="k must be"):
            ktruss(graph, 2)

    def test_empty_graph(self):
        res = ktruss(CSR.empty((10, 10)), 5)
        assert res.truss.nnz == 0


class TestBetweenness:
    def test_matches_networkx_all_sources(self, graph, graph_nx):
        res = betweenness_centrality(graph, sources=range(graph.nrows))
        want = nx.betweenness_centrality(graph_nx, normalized=False)
        ours = res.centrality / 2.0  # undirected halving convention
        for v in range(graph.nrows):
            assert ours[v] == pytest.approx(want[v], abs=1e-8)

    @pytest.mark.parametrize("algo", COMPLEMENT_ALGOS)
    def test_algorithms_agree(self, algo, graph):
        base = betweenness_centrality(graph, sources=range(30), algo="msa")
        got = betweenness_centrality(graph, sources=range(30), algo=algo)
        assert np.allclose(got.centrality, base.centrality)

    def test_subset_batch_partial_sums(self, graph, graph_nx):
        """Batch BC equals the Brandes partial sum over the batch sources."""
        sources = [3, 17, 55]
        res = betweenness_centrality(graph, sources=sources)
        want = np.zeros(graph.nrows)
        for s in sources:
            # per-source Brandes dependency via networkx shortest paths
            bc_s = nx.betweenness_centrality_subset(
                graph_nx, sources=[s], targets=list(graph_nx), normalized=False
            )
            for v, x in bc_s.items():
                want[v] += x
        # betweenness_centrality_subset double-counts like ours? networkx
        # subset variant counts each (s, t) pair once per direction choice;
        # compare our directed-sum halved
        assert np.allclose(res.centrality / 2.0, want, atol=1e-8)

    def test_random_batch_runs(self, graph):
        res = betweenness_centrality(graph, batch_size=16, seed=3)
        assert res.centrality.shape == (graph.nrows,)
        assert np.all(res.centrality >= -1e-12)
        assert res.teps > 0
        assert res.depth >= 1

    def test_rejects_non_complement_algos(self, graph):
        for algo in ("inner", "mca"):
            with pytest.raises(ValueError, match="complement"):
                betweenness_centrality(graph, sources=[0], algo=algo)

    def test_path_graph_exact(self):
        n = 6
        idx = np.arange(n - 1)
        g = CSR.from_coo(
            (n, n),
            np.concatenate([idx, idx + 1]),
            np.concatenate([idx + 1, idx]),
            np.ones(2 * (n - 1)),
        )
        res = betweenness_centrality(g, sources=range(n))
        # path graph: BC(v) = 2 * (i)(n-1-i) for position i (directed sum)
        for i in range(n):
            assert res.centrality[i] == pytest.approx(2.0 * i * (n - 1 - i))

    def test_counter_populated(self, graph):
        c = OpCounter()
        betweenness_centrality(graph, sources=range(10), counter=c)
        assert c.flops > 0


class TestBFS:
    def test_matches_networkx(self, graph, graph_nx):
        sources = [0, 7, 31]
        res = multi_source_bfs(graph, sources)
        for q, s in enumerate(sources):
            want = nx.single_source_shortest_path_length(graph_nx, s)
            for v in range(graph.nrows):
                assert res.levels[q, v] == want.get(v, -1)

    def test_source_level_zero(self, graph):
        res = multi_source_bfs(graph, [5])
        assert res.levels[0, 5] == 0

    def test_disconnected_unreached(self):
        # two disjoint edges
        g = CSR.from_coo((4, 4), [0, 1, 2, 3], [1, 0, 3, 2], np.ones(4))
        res = multi_source_bfs(g, [0])
        assert res.levels[0, 1] == 1
        assert res.levels[0, 2] == -1
        assert res.levels[0, 3] == -1

    @pytest.mark.parametrize("algo", COMPLEMENT_ALGOS)
    def test_algorithms_agree(self, algo, graph):
        base = multi_source_bfs(graph, [2, 9], algo="msa")
        got = multi_source_bfs(graph, [2, 9], algo=algo)
        assert np.array_equal(base.levels, got.levels)

    def test_rmat_bfs_depth_small(self):
        g = rmat(8, seed=1)
        res = multi_source_bfs(g, [int(np.argmax(g.row_nnz()))])
        reached = (res.levels[0] >= 0).sum()
        assert reached > 1
        assert res.depth < 20


class TestConnectedComponents:
    def test_matches_networkx(self, graph, graph_nx):
        from repro.apps import connected_components

        res = connected_components(graph)
        assert res.n_components == nx.number_connected_components(graph_nx)
        # vertices in the same nx component share our label and vice versa
        for comp in nx.connected_components(graph_nx):
            labels = {int(res.labels[v]) for v in comp}
            assert len(labels) == 1

    def test_disjoint_edges(self):
        g = CSR.from_coo((6, 6), [0, 1, 2, 3], [1, 0, 3, 2], np.ones(4))
        from repro.apps import connected_components

        res = connected_components(g)
        # {0,1}, {2,3} plus isolated singletons {4}, {5}
        assert res.n_components == 4
        assert res.labels[1] == 0 and res.labels[3] == 2
        assert res.labels[4] == 4 and res.labels[5] == 5

    def test_singletons_counted(self):
        from repro.apps import connected_components

        g = CSR.empty((5, 5))
        res = connected_components(g)
        assert res.n_components == 5
        assert np.array_equal(res.labels, np.arange(5))

    def test_labels_are_component_minima(self, graph):
        from repro.apps import connected_components

        res = connected_components(graph)
        for v in range(graph.nrows):
            assert res.labels[v] <= v

    def test_path_graph_one_component(self):
        from repro.apps import connected_components

        n = 50
        idx = np.arange(n - 1)
        g = CSR.from_coo(
            (n, n),
            np.concatenate([idx, idx + 1]),
            np.concatenate([idx + 1, idx]),
            np.ones(2 * (n - 1)),
        )
        res = connected_components(g)
        assert res.n_components == 1
        assert (res.labels == 0).all()
        # label propagation needs ~diameter rounds on a path
        assert res.rounds >= n // 2

    def test_rejects_non_square(self):
        from repro.apps import connected_components

        with pytest.raises(ValueError, match="square"):
            connected_components(CSR.empty((3, 4)))
