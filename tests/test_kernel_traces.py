"""Tests for the kernel access-trace builder and its replay through the
exact cache simulator."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.machine import TRACEABLE_ALGOS, build_trace, replay_miss_rate


@pytest.fixture(scope="module")
def triple():
    a = erdos_renyi(256, 256, 6, seed=1)
    b = erdos_renyi(256, 256, 6, seed=2)
    m = erdos_renyi(256, 256, 6, seed=3)
    return a, b, m


class TestTraceBuilder:
    @pytest.mark.parametrize("algo", TRACEABLE_ALGOS)
    def test_trace_nonempty(self, algo, triple):
        a, b, m = triple
        trace = build_trace(a, b, m, algo)
        assert trace.n_accesses() > a.nnz

    def test_unknown_algo(self, triple):
        a, b, m = triple
        with pytest.raises(ValueError, match="trace builder"):
            build_trace(a, b, m, "heap")

    def test_push_accesses_scale_with_flops(self):
        """More flops => more trace accesses (pattern 3 dominates)."""
        from repro.machine import total_flops

        a1 = erdos_renyi(128, 128, 2, seed=4)
        a2 = erdos_renyi(128, 128, 12, seed=4)
        b = erdos_renyi(128, 128, 6, seed=5)
        m = erdos_renyi(128, 128, 6, seed=6)
        t1 = build_trace(a1, b, m, "msa").n_accesses()
        t2 = build_trace(a2, b, m, "msa").n_accesses()
        assert t2 > t1
        assert total_flops(a2, b) > total_flops(a1, b)

    def test_inner_accesses_scale_with_mask(self):
        a = erdos_renyi(128, 128, 6, seed=7)
        b = erdos_renyi(128, 128, 6, seed=8)
        m1 = erdos_renyi(128, 128, 1, seed=9)
        m2 = erdos_renyi(128, 128, 16, seed=9)
        t1 = build_trace(a, b, m1, "inner").n_accesses()
        t2 = build_trace(a, b, m2, "inner").n_accesses()
        assert t2 > 4 * t1

    def test_mca_accumulator_compact(self, triple):
        """MCA's accumulator regions are sized by mask rows, so its trace
        never touches addresses proportional to ncols per row."""
        a, b, m = triple
        trace = build_trace(a, b, m, "mca")
        acc_regions = [seg for seg in trace.segments if seg[0].startswith("acc")]
        assert acc_regions
        for _name, _base, offsets, _stride in acc_regions:
            assert offsets.max(initial=0) < m.nnz


class TestMissRates:
    def test_perfect_cache_no_capacity_misses(self, triple):
        """With a cache far larger than the footprint, only cold misses
        remain: miss rate must be far below 50%."""
        a, b, m = triple
        rate, hits, misses = replay_miss_rate(
            a, b, m, "msa", cache_bytes=1 << 26
        )
        assert rate < 0.25
        assert hits > misses

    def test_tiny_cache_thrashes(self, triple):
        a, b, m = triple
        rate_big, *_ = replay_miss_rate(a, b, m, "msa", cache_bytes=1 << 24)
        rate_small, *_ = replay_miss_rate(a, b, m, "msa", cache_bytes=1 << 10)
        assert rate_small > rate_big

    def test_msa_hash_crossover_exact_simulation(self):
        """The paper's small/large crossover (Sec. 8.1), validated by the
        *exact* LRU simulator rather than the interpolated cost model:
        MSA's miss rate is lower than Hash's on a small matrix and higher
        on one whose dense accumulator overflows the cache."""
        cache = 64 * 1024
        small = 512
        large = 8192
        out = {}
        for n in (small, large):
            a = erdos_renyi(n, n, 8, seed=1)
            b = erdos_renyi(n, n, 8, seed=2)
            m = erdos_renyi(n, n, 8, seed=3)
            out[n] = {
                algo: replay_miss_rate(a, b, m, algo, cache_bytes=cache)[0]
                for algo in ("msa", "hash")
            }
        assert out[small]["msa"] < out[small]["hash"]
        assert out[large]["msa"] > out[large]["hash"]
