"""Integration tests: masked SpGEMM across every algorithm / phase /
implementation / complement combination, validated against the scipy oracle
(arithmetic semiring) and against the reference tier (other semirings)."""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.core import (
    ALGOS,
    gustavson_spgemm,
    masked_spgemm,
    masked_spgemm_multiply_then_mask,
    masked_spgemm_reference,
    spgemm_saxpy_fast,
    supports_complement,
)
from repro.machine import OpCounter, total_flops
from repro.semiring import MAX_TIMES, MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import CSR

from .conftest import assert_csr_equal, random_csr

COMPLEMENT_ALGOS = [a for a in ALGOS if supports_complement(a)]


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("impl", ["reference", "auto"])
@pytest.mark.parametrize("phases", [1, 2])
class TestAgainstOracle:
    def test_random_rectangular(self, algo, impl, phases, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm(a, b, m, algo=algo, impl=impl, phases=phases)
        assert_csr_equal(got, want, msg=f"{algo}/{impl}/{phases}P")

    def test_denser_inputs(self, algo, impl, phases):
        a = random_csr(25, 25, 10, seed=31)
        b = random_csr(25, 25, 10, seed=32)
        m = random_csr(25, 25, 5, seed=33)
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm(a, b, m, algo=algo, impl=impl, phases=phases)
        assert_csr_equal(got, want)

    def test_empty_mask(self, algo, impl, phases):
        a = random_csr(10, 10, 3, seed=34)
        b = random_csr(10, 10, 3, seed=35)
        got = masked_spgemm(a, b, CSR.empty((10, 10)), algo=algo, impl=impl,
                            phases=phases)
        assert got.nnz == 0

    def test_empty_inputs(self, algo, impl, phases):
        m = random_csr(10, 10, 3, seed=36)
        got = masked_spgemm(
            CSR.empty((10, 10)), CSR.empty((10, 10)), m,
            algo=algo, impl=impl, phases=phases,
        )
        assert got.nnz == 0

    def test_full_mask_equals_plain_product(self, algo, impl, phases):
        a = random_csr(12, 12, 3, seed=37)
        b = random_csr(12, 12, 3, seed=38)
        full = CSR.from_dense(np.ones((12, 12)))
        want = scipy_masked_spgemm(a, b, full)
        got = masked_spgemm(a, b, full, algo=algo, impl=impl, phases=phases)
        assert_csr_equal(got, want)

    def test_mask_superset_of_output(self, algo, impl, phases):
        # mask entries with no product (Figure 1: mask may contain entries
        # the multiplication never produces)
        a = CSR.from_coo((3, 3), [0], [0], [2.0])
        b = CSR.from_coo((3, 3), [0], [1], [3.0])
        m = CSR.from_dense(np.ones((3, 3)))
        got = masked_spgemm(a, b, m, algo=algo, impl=impl, phases=phases)
        assert got.nnz == 1
        assert got.to_dense()[0, 1] == 6.0


@pytest.mark.parametrize("algo", COMPLEMENT_ALGOS)
@pytest.mark.parametrize("impl", ["reference", "auto"])
class TestComplement:
    def test_against_oracle(self, algo, impl, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m, complement=True)
        got = masked_spgemm(a, b, m, algo=algo, impl=impl, complement=True)
        assert_csr_equal(got, want)

    def test_complement_partition_identity(self, algo, impl, small_triple):
        """C_in + C_out == A@B for every complement-capable algorithm."""
        a, b, m = small_triple
        inside = masked_spgemm(a, b, m, algo=algo, impl=impl)
        outside = masked_spgemm(a, b, m, algo=algo, impl=impl, complement=True)
        from repro.sparse import ewise_add

        full = scipy_masked_spgemm(a, b, CSR.from_dense(np.ones(m.shape)))
        assert_csr_equal(ewise_add(inside, outside), full)

    def test_empty_mask_complement_is_full_product(self, algo, impl):
        a = random_csr(10, 12, 3, seed=41)
        b = random_csr(12, 9, 3, seed=42)
        got = masked_spgemm(a, b, CSR.empty((10, 9)), algo=algo, impl=impl,
                            complement=True)
        want = scipy_masked_spgemm(a, b, CSR.from_dense(np.ones((10, 9))))
        assert_csr_equal(got, want)


class TestUnsupportedCombos:
    @pytest.mark.parametrize("algo", ["inner", "mca"])
    def test_complement_rejected(self, algo, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="complement"):
            masked_spgemm(a, b, m, algo=algo, complement=True)

    def test_unknown_algo(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="unknown algorithm"):
            masked_spgemm(a, b, m, algo="quantum")

    def test_bad_phases(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="phases"):
            masked_spgemm(a, b, m, phases=3)

    def test_heap_has_no_fast_impl(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="fast path"):
            masked_spgemm(a, b, m, algo="heap", impl="fast")

    def test_shape_mismatch(self):
        a = random_csr(5, 6, 2, seed=43)
        b = random_csr(7, 5, 2, seed=44)
        m = random_csr(5, 5, 2, seed=45)
        with pytest.raises(ValueError, match="inner dimensions"):
            masked_spgemm(a, b, m)

    def test_mask_shape_mismatch(self):
        a = random_csr(5, 6, 2, seed=46)
        b = random_csr(6, 5, 2, seed=47)
        m = random_csr(4, 5, 2, seed=48)
        with pytest.raises(ValueError, match="mask shape"):
            masked_spgemm(a, b, m)


@pytest.mark.parametrize("semiring", [PLUS_PAIR, MIN_PLUS, MAX_TIMES],
                         ids=["plus_pair", "min_plus", "max_times"])
@pytest.mark.parametrize("algo", ALGOS)
class TestSemirings:
    def test_fast_matches_reference(self, semiring, algo, small_triple):
        """Reference implementations define semiring semantics; the fast
        kernels must agree exactly."""
        a, b, m = small_triple
        ref = masked_spgemm_reference(a, b, m, algo=algo, semiring=semiring)
        got = masked_spgemm(a, b, m, algo=algo, impl="auto", semiring=semiring)
        assert_csr_equal(got, ref, msg=f"{algo}/{semiring.name}")

    def test_algorithms_agree(self, semiring, algo, small_triple):
        """All algorithms compute the same function on any semiring."""
        a, b, m = small_triple
        base = masked_spgemm(a, b, m, algo="msa", impl="reference",
                             semiring=semiring)
        got = masked_spgemm(a, b, m, algo=algo, impl="auto", semiring=semiring)
        assert_csr_equal(got, base)


class TestPlainSpGEMM:
    def test_gustavson_matches_scipy(self):
        a = random_csr(20, 15, 4, seed=51)
        b = random_csr(15, 18, 4, seed=52)
        want = CSR.from_scipy((a.to_scipy() @ b.to_scipy()).tocsr())
        assert_csr_equal(gustavson_spgemm(a, b), want)

    def test_saxpy_fast_matches_scipy(self):
        a = random_csr(30, 25, 5, seed=53)
        b = random_csr(25, 28, 5, seed=54)
        want = CSR.from_scipy((a.to_scipy() @ b.to_scipy()).tocsr())
        assert_csr_equal(spgemm_saxpy_fast(a, b), want)

    def test_multiply_then_mask_equals_masked(self, small_triple):
        a, b, m = small_triple
        direct = masked_spgemm(a, b, m, algo="msa")
        indirect = masked_spgemm_multiply_then_mask(a, b, m)
        assert_csr_equal(indirect, direct)

    def test_gustavson_counts_flops(self):
        a = random_csr(10, 10, 3, seed=55)
        b = random_csr(10, 10, 3, seed=56)
        c = OpCounter()
        gustavson_spgemm(a, b, counter=c)
        assert c.flops == total_flops(a, b)


class TestTwoPhaseConsistency:
    def test_symbolic_counts_match_numeric(self, small_triple):
        from repro.core import symbolic_masked

        a, b, m = small_triple
        sym = symbolic_masked(a, b, m)
        got = masked_spgemm(a, b, m, algo="msa")
        assert int(sym.sum()) == got.nnz
        assert np.array_equal(sym, got.row_nnz())

    def test_symbolic_complement(self, small_triple):
        from repro.core import symbolic_masked

        a, b, m = small_triple
        sym = symbolic_masked(a, b, m, complement=True)
        got = masked_spgemm(a, b, m, algo="msa", complement=True)
        assert np.array_equal(sym, got.row_nnz())

    def test_symbolic_cost_charged(self, small_triple):
        a, b, m = small_triple
        c1, c2 = OpCounter(), OpCounter()
        masked_spgemm(a, b, m, algo="msa", phases=1, counter=c1)
        masked_spgemm(a, b, m, algo="msa", phases=2, counter=c2)
        assert c1.symbolic_flops == 0
        assert c2.symbolic_flops == total_flops(a, b)

    def test_one_phase_bound_is_a_bound(self, small_triple):
        from repro.core import one_phase_bound

        a, b, m = small_triple
        bound, total = one_phase_bound(a, b, m)
        got = masked_spgemm(a, b, m, algo="msa")
        assert np.all(got.row_nnz() <= bound)
        assert got.nnz <= total


class TestStability:
    def test_output_rows_sorted(self, small_triple):
        """The paper highlights the MSA gather's stability: mask order in,
        mask order out — with sorted masks this means sorted output rows."""
        a, b, m = small_triple
        for algo in ALGOS:
            got = masked_spgemm(a, b, m, algo=algo, impl="auto")
            assert got.sorted_indices
            got.check()

    def test_deterministic(self, small_triple):
        a, b, m = small_triple
        for algo in ALGOS:
            x = masked_spgemm(a, b, m, algo=algo)
            y = masked_spgemm(a, b, m, algo=algo)
            assert x.equals(y)


@pytest.mark.parametrize("semiring", [PLUS_PAIR, MIN_PLUS, MAX_TIMES],
                         ids=["plus_pair", "min_plus", "max_times"])
@pytest.mark.parametrize("algo", COMPLEMENT_ALGOS)
class TestSemiringComplement:
    """Complemented masks on non-arithmetic semirings: the fast tier must
    agree with the reference tier (scipy cannot oracle these)."""

    def test_fast_matches_reference(self, semiring, algo, small_triple):
        a, b, m = small_triple
        ref = masked_spgemm_reference(
            a, b, m, algo=algo, semiring=semiring, complement=True
        )
        got = masked_spgemm(
            a, b, m, algo=algo, impl="auto", semiring=semiring, complement=True
        )
        assert_csr_equal(got, ref, msg=f"{algo}/{semiring.name}/complement")

    def test_identity_never_leaks(self, semiring, algo, small_triple):
        """min/max identities (inf/-inf) must never appear as output
        values (they would mean an empty reduction was emitted)."""
        a, b, m = small_triple
        got = masked_spgemm(
            a, b, m, algo=algo, impl="auto", semiring=semiring, complement=True
        )
        assert np.all(np.isfinite(got.data))


class TestESCExtension:
    """ESC (expand-sort-compress) — the extension algorithm (DESIGN.md §7,
    kernels.esc_kernel).  Not part of the paper's scheme lists."""

    def test_registered_as_extension(self):
        from repro.core import ALGOS, ALL_ALGOS, EXTENSION_ALGOS

        assert "esc" not in ALGOS  # the paper's figures stay 14-scheme
        assert "esc" in EXTENSION_ALGOS
        assert set(ALL_ALGOS) == set(ALGOS) | set(EXTENSION_ALGOS)

    @pytest.mark.parametrize("impl", ["reference", "auto"])
    @pytest.mark.parametrize("complement", [False, True])
    def test_matches_oracle(self, impl, complement, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m, complement=complement)
        got = masked_spgemm(a, b, m, algo="esc", impl=impl,
                            complement=complement)
        assert_csr_equal(got, want)

    @pytest.mark.parametrize("semiring", [PLUS_PAIR, MIN_PLUS, MAX_TIMES],
                             ids=["plus_pair", "min_plus", "max_times"])
    def test_semirings(self, semiring, small_triple):
        a, b, m = small_triple
        ref = masked_spgemm_reference(a, b, m, algo="esc", semiring=semiring)
        got = masked_spgemm(a, b, m, algo="esc", impl="auto", semiring=semiring)
        assert_csr_equal(got, ref)

    def test_two_phase(self, small_triple):
        a, b, m = small_triple
        c1 = masked_spgemm(a, b, m, algo="esc", phases=1)
        c2 = masked_spgemm(a, b, m, algo="esc", phases=2)
        assert c1.equals(c2)

    def test_supports_complement_flag(self):
        from repro.core import supports_complement

        assert supports_complement("esc")

    def test_modeled(self, small_triple):
        from repro.machine import HASWELL, RowCostModel

        a, b, m = small_triple
        est = RowCostModel(a, b, m, HASWELL).estimate("esc")
        assert est.total_cycles > 0
        assert "sort" in est.breakdown
        assert "accumulator" not in est.breakdown  # ESC's selling point


class TestColumnOrientation:
    @pytest.mark.parametrize("algo", ["msa", "hash", "mca", "inner", "heap"])
    def test_column_matches_row(self, algo, small_triple):
        a, b, m = small_triple
        row = masked_spgemm(a, b, m, algo=algo, orientation="row")
        col = masked_spgemm(a, b, m, algo=algo, orientation="column")
        assert_csr_equal(col, row, msg=algo)

    def test_column_complement(self, small_triple):
        a, b, m = small_triple
        row = masked_spgemm(a, b, m, algo="msa", complement=True)
        col = masked_spgemm(a, b, m, algo="msa", complement=True,
                            orientation="column")
        assert_csr_equal(col, row)

    def test_bad_orientation(self, small_triple):
        a, b, m = small_triple
        with pytest.raises(ValueError, match="orientation"):
            masked_spgemm(a, b, m, orientation="diagonal")


class TestChunkedSpGEMM:
    @pytest.mark.parametrize("panel", [1, 7, 16, 1000])
    def test_panel_invariant(self, panel, small_triple):
        from repro.core import masked_spgemm_chunked

        a, b, m = small_triple
        want = masked_spgemm(a, b, m, algo="msa")
        got = masked_spgemm_chunked(a, b, m, panel_width=panel)
        assert_csr_equal(got, want, msg=f"panel={panel}")

    @pytest.mark.parametrize("panel", [9, 64])
    def test_complement(self, panel, small_triple):
        from repro.core import masked_spgemm_chunked

        a, b, m = small_triple
        want = masked_spgemm(a, b, m, algo="msa", complement=True)
        got = masked_spgemm_chunked(a, b, m, panel_width=panel,
                                    complement=True)
        assert_csr_equal(got, want)

    def test_empty_mask_panels_skipped(self):
        """A mask confined to one panel must keep the other panels'
        B slices untouched (no flops counted for them)."""
        from repro.core import masked_spgemm_chunked

        a = random_csr(20, 20, 4, seed=71)
        b = random_csr(20, 100, 4, seed=72)
        # mask lives entirely in columns [0, 10)
        m = random_csr(20, 10, 3, seed=73)
        rows, cols, vals = m.to_coo()
        m_wide = CSR.from_coo((20, 100), rows, cols, vals)
        c_full = OpCounter()
        masked_spgemm(a, b, m_wide, algo="msa", impl="reference",
                      counter=c_full)
        c_chunk = OpCounter()
        masked_spgemm_chunked(a, b, m_wide, panel_width=10, algo="msa",
                              counter=c_chunk)
        got = masked_spgemm_chunked(a, b, m_wide, panel_width=10)
        want = masked_spgemm(a, b, m_wide)
        assert_csr_equal(got, want)
        # chunked inserts bounded by the single live panel's expansion
        assert c_chunk.accum_inserts < total_flops(a, b)

    def test_restrict_columns(self):
        from repro.core import restrict_columns

        a = random_csr(10, 30, 4, seed=74)
        panel = restrict_columns(a, 10, 20)
        assert panel.shape == (10, 10)
        dense = a.to_dense()[:, 10:20]
        assert np.allclose(panel.to_dense(), dense)

    def test_bad_panel_width(self, small_triple):
        from repro.core import masked_spgemm_chunked

        a, b, m = small_triple
        with pytest.raises(ValueError, match="panel_width"):
            masked_spgemm_chunked(a, b, m, panel_width=0)

    def test_semiring(self, small_triple):
        from repro.core import masked_spgemm_chunked

        a, b, m = small_triple
        want = masked_spgemm(a, b, m, semiring=PLUS_PAIR)
        got = masked_spgemm_chunked(a, b, m, panel_width=13,
                                    semiring=PLUS_PAIR)
        assert_csr_equal(got, want)
