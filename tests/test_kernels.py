"""Unit tests for the vectorized kernel machinery (expansion, vector hash
table, block iteration) — the parts of the fast tier with their own logic."""

import numpy as np
import pytest

from repro.core.kernels import (
    DEFAULT_FLOP_BUDGET,
    VectorHashTable,
    expand_products,
    iter_row_blocks,
    row_keys,
)
from repro.core.kernels.msa_kernel import masked_spgemm_msa_fast
from repro.core.kernels.hash_kernel import masked_spgemm_hash_fast
from repro.baselines import scipy_masked_spgemm
from repro.machine import OpCounter, total_flops
from repro.semiring import PLUS_TIMES

from .conftest import assert_csr_equal, random_csr


class TestExpandProducts:
    def test_count_equals_flops(self):
        a = random_csr(20, 15, 4, seed=1)
        b = random_csr(15, 18, 4, seed=2)
        rows, cols, vals = expand_products(a, b, 0, 20, PLUS_TIMES)
        assert rows.shape[0] == total_flops(a, b)

    def test_products_correct(self):
        a = random_csr(10, 8, 3, seed=3)
        b = random_csr(8, 9, 3, seed=4)
        rows, cols, vals = expand_products(a, b, 0, 10, PLUS_TIMES)
        # summing the expansion reproduces the full product
        dense = np.zeros((10, 9))
        np.add.at(dense, (rows, cols), vals)
        want = a.to_dense() @ b.to_dense()
        assert np.allclose(dense, want)

    def test_row_range(self):
        a = random_csr(10, 8, 3, seed=5)
        b = random_csr(8, 9, 3, seed=6)
        rows, _, _ = expand_products(a, b, 3, 7, PLUS_TIMES)
        if rows.shape[0]:
            assert rows.min() >= 3
            assert rows.max() < 7

    def test_empty_range(self):
        a = random_csr(10, 8, 3, seed=7)
        b = random_csr(8, 9, 3, seed=8)
        rows, cols, vals = expand_products(a, b, 2, 2, PLUS_TIMES)
        assert rows.shape[0] == 0

    def test_grouped_by_row(self):
        a = random_csr(12, 10, 3, seed=9)
        b = random_csr(10, 10, 3, seed=10)
        rows, _, _ = expand_products(a, b, 0, 12, PLUS_TIMES)
        assert np.all(np.diff(rows) >= 0)


class TestIterRowBlocks:
    def test_covers_all_rows(self):
        a = random_csr(50, 40, 5, seed=11)
        b = random_csr(40, 45, 5, seed=12)
        blocks = list(iter_row_blocks(a, b, flop_budget=100))
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 50
        for (l1, h1), (l2, h2) in zip(blocks, blocks[1:]):
            assert h1 == l2
            assert l1 < h1

    def test_budget_respected(self):
        from repro.machine import flops_per_row

        a = random_csr(50, 40, 5, seed=13)
        b = random_csr(40, 45, 5, seed=14)
        fl = flops_per_row(a, b)
        for lo, hi in iter_row_blocks(a, b, flop_budget=100):
            if hi - lo > 1:  # single oversized rows are allowed
                assert fl[lo:hi].sum() <= 100

    def test_one_big_block_when_budget_large(self):
        a = random_csr(20, 20, 3, seed=15)
        b = random_csr(20, 20, 3, seed=16)
        blocks = list(iter_row_blocks(a, b, DEFAULT_FLOP_BUDGET))
        assert blocks == [(0, 20)]


class TestRowKeys:
    def test_bijective(self):
        rows = np.array([0, 1, 2, 2])
        cols = np.array([5, 0, 3, 4])
        keys = row_keys(rows, cols, 10)
        assert np.array_equal(keys // 10, rows)
        assert np.array_equal(keys % 10, cols)

    def test_ordering(self):
        # row-major ordering is preserved
        keys = row_keys(np.array([0, 0, 1]), np.array([1, 2, 0]), 100)
        assert np.all(np.diff(keys) > 0)


class TestVectorHashTable:
    def test_insert_lookup_roundtrip(self):
        t = VectorHashTable(100)
        keys = np.arange(0, 1000, 10, dtype=np.int64)
        slots = t.insert(keys)
        found, s2 = t.lookup(keys)
        assert found.all()
        assert np.array_equal(slots, s2)

    def test_absent_keys(self):
        t = VectorHashTable(10)
        t.insert(np.array([1, 2, 3], dtype=np.int64))
        found, _ = t.lookup(np.array([4, 5, 1], dtype=np.int64))
        assert np.array_equal(found, [False, False, True])

    def test_colliding_keys_resolve(self):
        t = VectorHashTable(8)
        cap = t.cap
        keys = np.array([3, 3 + cap, 3 + 2 * cap, 7], dtype=np.int64)
        slots = t.insert(keys)
        assert len(set(slots.tolist())) == 4  # all distinct slots
        found, s2 = t.lookup(keys)
        assert found.all()
        assert np.array_equal(slots, s2)

    def test_idempotent_insert(self):
        t = VectorHashTable(8)
        k = np.array([42], dtype=np.int64)
        s1 = t.insert(k)
        s2 = t.insert(k)
        assert s1[0] == s2[0]

    def test_probe_counting(self):
        c = OpCounter()
        t = VectorHashTable(8, counter=c)
        t.insert(np.array([1, 2, 3], dtype=np.int64))
        assert c.hash_probes >= 3

    def test_capacity_power_of_two_and_load(self):
        for n in (1, 5, 33, 1000):
            t = VectorHashTable(n)
            assert t.cap & (t.cap - 1) == 0
            assert t.cap >= 4 * n

    def test_empty_lookup(self):
        t = VectorHashTable(4)
        found, slots = t.lookup(np.empty(0, dtype=np.int64))
        assert found.shape[0] == 0


class TestKernelBlocking:
    """Fast kernels must be invariant to the flop-budget blocking."""

    @pytest.mark.parametrize("budget", [1, 17, 1000, DEFAULT_FLOP_BUDGET])
    def test_msa_blocking_invariant(self, budget, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm_msa_fast(a, b, m, flop_budget=budget)
        assert_csr_equal(got, want, msg=f"budget={budget}")

    @pytest.mark.parametrize("budget", [1, 17, 1000])
    def test_hash_blocking_invariant(self, budget, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm_hash_fast(a, b, m, flop_budget=budget)
        assert_csr_equal(got, want)

    @pytest.mark.parametrize("dense_budget", [8, 64, 1 << 22])
    def test_msa_dense_budget_invariant(self, dense_budget, small_triple):
        a, b, m = small_triple
        want = scipy_masked_spgemm(a, b, m)
        got = masked_spgemm_msa_fast(a, b, m, dense_budget=dense_budget)
        assert_csr_equal(got, want)

    def test_counters_track_products(self, small_triple):
        a, b, m = small_triple
        c = OpCounter()
        masked_spgemm_msa_fast(a, b, m, counter=c)
        assert c.accum_inserts == total_flops(a, b)
        assert c.accum_allowed == m.nnz
