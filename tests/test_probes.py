"""Tests for accumulator micro-telemetry (:mod:`repro.observe.probes`).

The module docstring's three contracts, in order:

1. Probes off are (nearly) free — the R-MAT triangle-count kernel with
   probes *enabled* stays within 3% of the disabled run (the ISSUE's
   acceptance bound), and the disabled path installs nothing.
2. Histograms are exact in aggregate — ``hash.probe_chain.total`` equals
   ``OpCounter.hash_probes`` bit-for-bit on serial, thread and process
   backends, for both the vectorized and the scalar reference hash paths.
3. Histograms cross threads and processes — worker exports ingest into the
   coordinator registry and merges commute.

Cross-process tests carry the ``backend`` marker; the module carries
``trace`` (probes are part of the observability layer).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.masked_spgemm import masked_spgemm
from repro.graphs import erdos_renyi, rmat
from repro.machine import OpCounter
from repro.observe import metrics, report, tracing
from repro.observe.probes import (
    BUCKET_LABELS,
    NBUCKETS,
    Histogram,
    ProbeRegistry,
    bucket_index,
    current,
    probing,
)
from repro.parallel import parallel_masked_spgemm, shutdown_pool
from repro.parallel.pool import process_backend_available
from repro.semiring import PLUS_PAIR, PLUS_TIMES

pytestmark = pytest.mark.trace


def _triple(seed=1, n=60):
    a = erdos_renyi(n, n, 5, seed=seed, values="uniform")
    b = erdos_renyi(n, n, 5, seed=seed + 1, values="uniform")
    m = erdos_renyi(n, n, 8, seed=seed + 2)
    return a, b, m


def _tc_operand(scale=9, seed=7):
    return rmat(scale, seed=seed).pattern().tril(-1)


# ----------------------------------------------------------------------
# histogram mechanics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_index_power_of_two_boundaries(self):
        assert bucket_index(0) == 0
        assert bucket_index(1) == 1
        assert bucket_index(2) == 2
        assert bucket_index(3) == 2
        assert bucket_index(4) == 3
        assert bucket_index(7) == 3
        assert bucket_index(8) == 4
        # the last bucket is open-ended
        assert bucket_index(10**9) == NBUCKETS - 1

    def test_labels_cover_every_bucket(self):
        assert len(BUCKET_LABELS) == NBUCKETS
        assert BUCKET_LABELS[0] == "0"
        assert BUCKET_LABELS[1] == "1"
        assert BUCKET_LABELS[-1].startswith(">=")

    def test_record_tracks_exact_aggregates(self):
        h = Histogram()
        for v in (0, 1, 1, 5, 300):
            h.record(v)
        assert h.count == 5
        assert h.total == 307
        assert h.vmax == 300
        assert h.mean == pytest.approx(307 / 5)
        assert sum(h.counts) == h.count

    def test_record_with_repeats(self):
        h = Histogram()
        h.record(3, repeats=4)
        assert (h.count, h.total, h.vmax) == (4, 12, 3)
        h.record(3, repeats=0)  # no-op
        assert h.count == 4

    def test_record_array_matches_scalar_recording(self):
        values = np.array([0, 1, 2, 3, 4, 9, 17, 40000, 7])
        ha, hb = Histogram(), Histogram()
        ha.record_array(values)
        for v in values:
            hb.record(int(v))
        assert ha.counts == hb.counts
        assert (ha.count, ha.total, ha.vmax) == (hb.count, hb.total, hb.vmax)

    def test_record_array_empty_is_noop(self):
        h = Histogram()
        h.record_array(np.empty(0, np.int64))
        assert h.count == 0

    def test_merge_dict_roundtrip_and_short_schema(self):
        h = Histogram()
        h.record_array(np.array([1, 2, 3, 100]))
        other = Histogram()
        other.merge_dict(h.as_dict())
        assert other.as_dict() == h.as_dict()
        # an older payload with fewer buckets still merges
        short = {"buckets": [2, 1], "count": 3, "total": 2, "max": 1}
        other.merge_dict(short)
        assert other.count == h.count + 3
        assert other.total == h.total + 2


class TestProbeRegistry:
    def test_disabled_by_default(self):
        assert current() is None

    def test_probing_installs_and_restores(self):
        with probing() as pr:
            assert current() is pr
            pr.hist("x").record(2)
        assert current() is None

    def test_export_ingest_commutes(self):
        a, b = ProbeRegistry(), ProbeRegistry()
        a.hist("k").record_array(np.array([1, 2, 3]))
        b.hist("k").record_array(np.array([10, 20]))
        b.hist("only_b").record(1)
        merged_ab, merged_ba = ProbeRegistry(), ProbeRegistry()
        merged_ab.ingest(a.export())
        merged_ab.ingest(b.export())
        merged_ba.ingest(b.export())
        merged_ba.ingest(a.export())
        assert merged_ab.export() == merged_ba.export()
        assert merged_ab.hist("k").total == 36

    def test_snapshot_diff_reports_only_changes(self):
        pr = ProbeRegistry()
        pr.hist("a").record(5)
        snap = pr.snapshot()
        pr.hist("a").record(7)
        pr.hist("b").record(1)
        d = pr.diff(snap)
        assert d["a"] == {"count": 1, "total": 7, "max": 7}
        assert d["b"]["count"] == 1
        pr2_diff = pr.diff(pr.snapshot())
        assert pr2_diff == {}


# ----------------------------------------------------------------------
# bit-for-bit: probe totals == OpCounter totals
# ----------------------------------------------------------------------
class TestBitForBitInvariant:
    def _run(self, impl, **kwargs):
        a, b, m = _triple()
        with probing() as pr:
            counter = OpCounter()
            masked_spgemm(a, b, m, algo="hash", impl=impl,
                          semiring=PLUS_TIMES, counter=counter, **kwargs)
            export = pr.export()
        return counter, export

    @pytest.mark.parametrize("impl", ["fast", "reference"])
    def test_hash_probe_chain_total_equals_counter(self, impl):
        counter, export = self._run(impl)
        assert counter.hash_probes > 0
        assert export["hash.probe_chain"]["total"] == counter.hash_probes

    def test_complement_hash_also_exact(self):
        a, b, m = _triple(seed=4)
        with probing() as pr:
            counter = OpCounter()
            masked_spgemm(a, b, m, algo="hash", impl="reference",
                          complement=True, semiring=PLUS_TIMES,
                          counter=counter)
            export = pr.export()
        assert export["hash.probe_chain"]["total"] == counter.hash_probes

    @pytest.mark.backend
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exact_across_backends(self, backend):
        if backend == "process" and not process_backend_available():
            pytest.skip("no shared-memory process backend on this platform")
        a, b, m = _triple(seed=9, n=100)
        with probing() as pr:
            counter = OpCounter()
            parallel_masked_spgemm(a, b, m, algo="hash", threads=3,
                                   backend=backend, semiring=PLUS_PAIR,
                                   counter=counter)
            export = pr.export()
        assert counter.hash_probes > 0
        assert export["hash.probe_chain"]["total"] == counter.hash_probes
        if backend == "process":
            shutdown_pool()

    def test_backends_agree_with_serial_export(self):
        a, b, m = _triple(seed=9, n=100)
        exports = {}
        for backend in ("serial", "thread"):
            with probing() as pr:
                parallel_masked_spgemm(a, b, m, algo="hash", threads=3,
                                       backend=backend, semiring=PLUS_PAIR)
                exports[backend] = pr.export()
        s = exports["serial"]["hash.probe_chain"]
        t = exports["thread"]["hash.probe_chain"]
        assert (s["count"], s["total"]) == (t["count"], t["total"])


# ----------------------------------------------------------------------
# kernel coverage: every instrumented family reports
# ----------------------------------------------------------------------
class TestKernelCoverage:
    def test_msa_fast_reports_touched_and_mask_stats(self):
        a, b, m = _triple()
        with probing() as pr:
            masked_spgemm(a, b, m, algo="msa", semiring=PLUS_TIMES)
            export = pr.export()
        assert "msa.touched_per_mask_pct" in export
        assert "msa.reset_cells" in export
        hits = export["mask.row_hits"]
        misses = export["mask.row_misses"]
        # per-row hit + miss counts partition the mask nonzeros
        assert hits["total"] + misses["total"] == m.nnz

    def test_mca_fast_reports_touched(self):
        a, b, m = _triple()
        with probing() as pr:
            masked_spgemm(a, b, m, algo="mca", semiring=PLUS_TIMES)
            export = pr.export()
        assert "mca.touched_per_mask_pct" in export
        assert export["mask.row_hits"]["total"] + \
            export["mask.row_misses"]["total"] == m.nnz

    def test_heap_reference_reports_inspections(self):
        a, b, m = _triple()
        with probing() as pr:
            counter = OpCounter()
            masked_spgemm(a, b, m, algo="heap", semiring=PLUS_TIMES,
                          counter=counter)
            export = pr.export()
        insp = export["heap.inspect_advances"]
        assert insp["count"] > 0
        # every advance recorded is a mask scan the counter charged (the
        # main merge loop charges additional scans the histogram never sees)
        assert insp["total"] <= counter.mask_scans

    def test_hash_load_factor_bounded(self):
        a, b, m = _triple()
        with probing() as pr:
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
            export = pr.export()
        lf = export["hash.load_factor_pct"]
        # table sizing targets load factor 0.25; realized load can never
        # exceed 100%
        assert 0 <= lf["max"] <= 100

    def test_no_probes_collected_when_disabled(self):
        a, b, m = _triple()
        assert current() is None
        masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
        assert current() is None


# ----------------------------------------------------------------------
# surfacing: spans, metrics, report
# ----------------------------------------------------------------------
class TestSurfacing:
    def test_kernel_span_carries_probe_deltas(self):
        a, b, m = _triple()
        with tracing() as tr, probing():
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
        kernel_spans = [sp for sp in tr.spans if sp.name == "kernel.hash"]
        assert kernel_spans
        delta = kernel_spans[0].attrs.get("probes")
        assert delta and "hash.probe_chain" in delta
        assert delta["hash.probe_chain"]["count"] > 0

    def test_metrics_embeds_probe_export(self):
        a, b, m = _triple()
        with tracing() as tr, probing() as pr:
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
            mx = metrics(tr, probes=pr)
        assert mx["probes"]["hash.probe_chain"]["count"] > 0
        # default argument picks up the installed registry
        with tracing() as tr2, probing():
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
            mx2 = metrics(tr2)
        assert mx2["probes"]["hash.probe_chain"]["count"] > 0

    def test_metrics_probes_empty_when_disabled(self):
        a, b, m = _triple()
        with tracing() as tr:
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
        assert metrics(tr)["probes"] == {}

    def test_report_renders_micro_telemetry_section(self):
        a, b, m = _triple()
        with tracing() as tr, probing() as pr:
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
            text = report(tr, probes=pr)
        assert "accumulator micro-telemetry" in text
        assert "hash.probe_chain" in text

    def test_report_omits_section_without_probes(self):
        a, b, m = _triple()
        with tracing() as tr:
            masked_spgemm(a, b, m, algo="hash", semiring=PLUS_TIMES)
        assert "micro-telemetry" not in report(tr)


# ----------------------------------------------------------------------
# overhead: probes enabled must stay under 3% on the R-MAT TC case
# ----------------------------------------------------------------------
class TestProbeOverhead:
    def test_enabled_overhead_under_three_percent(self):
        """The ISSUE's acceptance bound: running the R-MAT triangle-count
        kernel with probe histograms *enabled* costs <3% wall-clock over
        the disabled configuration.

        Min-of-repeats both ways plus a small absolute floor — the same
        methodology as the tracer's disabled-path test — so scheduler
        jitter on a loaded CI machine cannot fail a passing configuration.
        """
        low = _tc_operand()

        def run():
            masked_spgemm(low, low, low, algo="hash", semiring=PLUS_PAIR)

        def timed(calls=5):
            t0 = time.perf_counter()
            for _ in range(calls):
                run()
            return time.perf_counter() - t0

        run()  # warm allocators and caches
        assert current() is None
        t_disabled = float("inf")
        t_enabled = float("inf")
        # interleave the configurations so a load spike on a shared CI
        # machine penalises both paths equally; min-of-trials each way
        for _ in range(7):
            t_disabled = min(t_disabled, timed())
            with probing():
                run()  # warm the registry (histogram creation)
                t_enabled = min(t_enabled, timed())
        assert t_enabled <= t_disabled * 1.03 + 500e-6, (
            f"probe overhead too high: {t_enabled:.6f}s enabled vs "
            f"{t_disabled:.6f}s disabled"
        )
