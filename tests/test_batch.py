"""Batched kernel tier: helper invariants, boundary cases and bit-for-bit
equivalence of the bucketed tier against the per-row tier.

The contract under test (docs/kernels.md): ``batch="bucket"`` and
``batch="perrow"`` produce identical matrices (values included) and
identical ``OpCounter`` totals — on every backend, with and without
sessions, fused (2P + symbolic bound) or not — and the compiled-tier seam
(:mod:`repro.core.kernels.compiled`) never changes results whichever side
dispatches.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels import compiled as compiled_mod
from repro.core.kernels.batch import (
    BATCH_TIERS,
    DEFAULT_BATCH_CROSSOVER_FLOPS,
    FusedSlab,
    bucket_batches,
    bucket_census,
    bucket_ids,
    expand_keys,
    per_row_flops,
    plan_flop_blocks,
    resolve_tier,
)
from repro.core.kernels.expand import expand_products
from repro.core.masked_spgemm import masked_spgemm
from repro.engine import ExecutionSession, Planner, execute
from repro.graphs import erdos_renyi, rmat
from repro.machine import OpCounter
from repro.machine.config import MachineConfig
from repro.observe import probes as _probes
from repro.parallel.pool import shutdown_pool
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import CSR, read_mtx

pytestmark = pytest.mark.batch

DATA = Path(__file__).parent.parent / "data"
BATCHABLE = ("msa", "hash", "esc")
BACKENDS = ("serial", "thread", "process")


def _rand_csr(nr, nc, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((nr, nc)) < density
    rows, cols = np.nonzero(dense)
    vals = rng.random(rows.size)
    return CSR.from_coo(
        (nr, nc), rows.astype(np.int64), cols.astype(np.int64), vals
    )


def _identical(c1: CSR, c2: CSR) -> bool:
    return (
        c1.shape == c2.shape
        and np.array_equal(c1.indptr, c2.indptr)
        and np.array_equal(c1.indices, c2.indices)
        and np.array_equal(c1.data, c2.data)
    )


def _run(a, b, m, algo, tier, **kw):
    counter = OpCounter()
    out = masked_spgemm(
        a, b, m, algo=algo, batch=tier, counter=counter, **kw
    )
    return out, counter.as_dict()


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pool()


# ----------------------------------------------------------------------
# helper invariants
# ----------------------------------------------------------------------
class TestHelpers:
    def _greedy_reference(self, per_row, budget):
        """The historical per-row greedy walk, kept as the oracle."""
        blocks, lo, acc = [], 0, 0
        for i, f in enumerate(per_row):
            if acc > 0 and acc + int(f) > budget:
                blocks.append((lo, i))
                lo, acc = i, 0
            acc += int(f)
        if lo < len(per_row):
            blocks.append((lo, len(per_row)))
        return blocks

    def test_plan_flop_blocks_matches_greedy_walk(self):
        rng = np.random.default_rng(0)
        for trial in range(200):
            n = int(rng.integers(0, 40))
            per = rng.integers(0, 50, size=n).astype(np.int64)
            # salt with zero runs and mega-rows — the historical edge cases
            if n and trial % 3 == 0:
                per[rng.integers(0, n)] = 0
            if n and trial % 5 == 0:
                per[rng.integers(0, n)] = 10_000
            budget = int(rng.integers(1, 60))
            got = list(plan_flop_blocks(per, budget))
            assert got == self._greedy_reference(per, budget)

    def test_bucket_ids_are_bit_lengths(self):
        per = np.array([0, 1, 2, 3, 4, 7, 8, 1023, 1024], dtype=np.int64)
        want = [int(x).bit_length() for x in per]
        assert bucket_ids(per).tolist() == want

    def test_bucket_batches_partition_rows_exactly_once(self):
        rng = np.random.default_rng(1)
        per = rng.integers(0, 4096, size=300).astype(np.int64)
        per[:40] = 0
        seen = np.zeros(per.size, dtype=np.int64)
        for b, rows in bucket_batches(per, flop_budget=256, width_cap=16):
            assert rows.size <= 16
            assert bool(np.all(np.diff(rows) > 0))  # ascending within chunk
            assert bool(np.all(bucket_ids(per[rows]) == b))
            np.add.at(seen, rows, 1)
        assert bool(np.all(seen == 1))

    def test_bucket_batches_skips_empty_bucket_on_request(self):
        per = np.array([0, 0, 5, 0, 9], dtype=np.int64)
        got = [r for _, r in bucket_batches(per, 64, include_empty=False)]
        assert sorted(int(x) for rows in got for x in rows) == [2, 4]

    def test_bucket_census(self):
        per = np.array([0, 0, 1, 2, 3, 8], dtype=np.int64)
        assert bucket_census(per) == {0: 2, 1: 1, 2: 2, 4: 1}
        assert bucket_census(np.empty(0, dtype=np.int64)) == {}

    def test_resolve_tier_crossover_and_validation(self):
        a = _rand_csr(20, 20, 0.3, 0)
        b = _rand_csr(20, 20, 0.3, 1)
        total = int(per_row_flops(a, b).sum())
        assert resolve_tier(a, b, "auto", crossover=total + 1) == "perrow"
        assert resolve_tier(a, b, "auto", crossover=total) == "bucket"
        assert resolve_tier(a, b, "bucket", crossover=10**12) == "bucket"
        with pytest.raises(ValueError, match="batch must be one of"):
            resolve_tier(a, b, "bogus")
        assert DEFAULT_BATCH_CROSSOVER_FLOPS == MachineConfig(
            name="x", cores=1, ghz=1.0
        ).batch_crossover_flops

    def test_expand_keys_reproduces_expand_products(self):
        a = _rand_csr(25, 18, 0.25, 2)
        b = _rand_csr(18, 30, 0.25, 3)
        rows = np.arange(a.nrows, dtype=np.int64)
        p_local, p_src, p_bpos = expand_keys(a, b, rows)
        pr, pc, pv = expand_products(a, b, 0, a.nrows, PLUS_TIMES)
        assert np.array_equal(rows[p_local], pr)
        assert np.array_equal(b.indices[p_bpos], pc)
        lazy = PLUS_TIMES.mult_ufunc(a.data[p_src], b.data[p_bpos])
        assert np.array_equal(np.asarray(lazy, dtype=np.float64), pv)

    def test_fused_slab_detects_symbolic_mismatch(self):
        slab = FusedSlab((2, 4), np.array([1, 1], dtype=np.int64))
        with pytest.raises(AssertionError, match="symbolic/numeric mismatch"):
            slab.write(
                np.array([0, 0]), np.array([1, 2]), np.array([1.0, 2.0])
            )
        slab2 = FusedSlab((2, 4), np.array([1, 1], dtype=np.int64))
        slab2.write(np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(AssertionError, match="symbolic/numeric mismatch"):
            slab2.finish()


# ----------------------------------------------------------------------
# bucket boundary cases
# ----------------------------------------------------------------------
class TestBucketBoundaries:
    def _assert_tiers_identical(self, a, b, m, *, semiring=PLUS_TIMES):
        for algo in BATCHABLE:
            for complement in (False, True):
                for phases in (1, 2):
                    o1, c1 = _run(
                        a, b, m, algo, "perrow",
                        complement=complement, phases=phases,
                        semiring=semiring,
                    )
                    o2, c2 = _run(
                        a, b, m, algo, "bucket",
                        complement=complement, phases=phases,
                        semiring=semiring,
                    )
                    assert _identical(o1, o2), (algo, complement, phases)
                    assert c1 == c2, (algo, complement, phases)

    def test_empty_rows(self):
        # half of A's rows (and a few mask rows) are structurally empty —
        # they land in bucket 0 and must emit/charge exactly nothing
        a = _rand_csr(30, 20, 0.3, 10)
        keep = np.repeat(np.arange(30, dtype=np.int64)[::2], a.row_nnz()[::2])
        sel = np.isin(
            np.repeat(np.arange(30, dtype=np.int64), a.row_nnz()), keep
        )
        rows, cols, vals = a.to_coo()
        a = CSR.from_coo((30, 20), rows[sel], cols[sel], vals[sel])
        b = _rand_csr(20, 25, 0.3, 11)
        m = _rand_csr(30, 25, 0.4, 12)
        self._assert_tiers_identical(a, b, m)

    def test_all_rows_empty(self):
        a = CSR.empty((8, 6))
        b = _rand_csr(6, 7, 0.5, 13)
        m = _rand_csr(8, 7, 0.5, 14)
        self._assert_tiers_identical(a, b, m)

    def test_single_mega_row_dominates_its_bucket(self):
        # one row expands to ~nc*k products (far over any chunk budget on
        # its own), the rest are tiny — exercises the over-budget
        # one-row-chunk path and bucket skew
        nr, k, nc = 20, 40, 40
        rng = np.random.default_rng(15)
        rows = [np.zeros(k, dtype=np.int64)]
        cols = [np.arange(k, dtype=np.int64)]
        for i in range(1, nr):
            rows.append(np.full(1, i, dtype=np.int64))
            cols.append(rng.integers(0, k, size=1).astype(np.int64))
        rows, cols = np.concatenate(rows), np.concatenate(cols)
        a = CSR.from_coo((nr, k), rows, cols, rng.random(rows.size))
        b = _rand_csr(k, nc, 0.6, 16)
        m = _rand_csr(nr, nc, 0.5, 17)
        per = per_row_flops(a, b)
        assert int(per[0]) > 4 * int(per[1:].max())
        self._assert_tiers_identical(a, b, m)

    def test_all_rows_one_bucket(self):
        # uniform 4-nnz rows against a uniform B: a single size class
        nr, k, nc = 24, 16, 16
        rng = np.random.default_rng(18)
        cols = np.stack([
            rng.choice(k, size=4, replace=False) for _ in range(nr)
        ]).astype(np.int64)
        rows = np.repeat(np.arange(nr, dtype=np.int64), 4)
        a = CSR.from_coo((nr, k), rows, cols.ravel(), rng.random(rows.size))
        bc = np.stack([
            rng.choice(nc, size=3, replace=False) for _ in range(k)
        ]).astype(np.int64)
        b = CSR.from_coo(
            (k, nc),
            np.repeat(np.arange(k, dtype=np.int64), 3),
            bc.ravel(),
            rng.random(3 * k),
        )
        m = _rand_csr(nr, nc, 0.5, 19)
        assert len(bucket_census(per_row_flops(a, b))) == 1
        self._assert_tiers_identical(a, b, m)

    def test_tiny_flop_budget_forces_many_chunks(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        for algo in BATCHABLE:
            c1 = OpCounter()
            c2 = OpCounter()
            kern = masked_spgemm  # same entry, different tiers
            o1 = kern(g, g, g, algo=algo, batch="perrow", counter=c1,
                      semiring=PLUS_PAIR)
            o2 = kern(g, g, g, algo=algo, batch="bucket", counter=c2,
                      semiring=PLUS_PAIR)
            assert _identical(o1, o2) and c1.as_dict() == c2.as_dict()

    def test_non_add_semiring_equivalence(self):
        # MIN_PLUS routes around the compiled seam (add_ufunc is minimum)
        a = _rand_csr(30, 30, 0.2, 20)
        b = _rand_csr(30, 30, 0.2, 21)
        m = _rand_csr(30, 30, 0.4, 22)
        self._assert_tiers_identical(a, b, m, semiring=MIN_PLUS)


# ----------------------------------------------------------------------
# backend equivalence: karate / ER / R-MAT x serial / thread / process
# ----------------------------------------------------------------------
def _graphs():
    karate = read_mtx(DATA / "karate.mtx")
    er = erdos_renyi(48, 48, 3, seed=7, values="uniform")
    rm = rmat(6, seed=3)
    return [("karate", karate), ("er", er), ("rmat", rm)]


@pytest.fixture(scope="module", params=_graphs(), ids=lambda p: p[0])
def graph(request):
    return request.param[1]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algo", BATCHABLE)
    def test_bucket_matches_perrow_across_backends(self, graph, backend, algo):
        g = graph
        results = {}
        for tier in ("perrow", "bucket"):
            pl = Planner().plan(
                g, g, g, algo=algo, threads=3, backend=backend, batch=tier,
            )
            counter = OpCounter()
            results[tier] = (
                execute(pl, g, g, g, semiring=PLUS_PAIR, counter=counter),
                counter.as_dict(),
            )
        assert _identical(results["perrow"][0], results["bucket"][0])
        assert results["perrow"][1] == results["bucket"][1]

    @pytest.mark.parametrize("use_session", (False, True), ids=("nosess", "sess"))
    def test_sessions_do_not_change_results(self, graph, use_session):
        g = graph
        base = {}
        for algo in BATCHABLE:
            base[algo], _ = _run(g, g, g, algo, "perrow", phases=2,
                                 semiring=PLUS_PAIR)
        session = ExecutionSession() if use_session else None
        for _ in range(2):  # second pass exercises the bound memo / fusion
            for algo in BATCHABLE:
                out = masked_spgemm(
                    g, g, g, algo=algo, batch="bucket", phases=2,
                    semiring=PLUS_PAIR, session=session,
                )
                assert _identical(out, base[algo])
        if use_session:
            # the bound memo is keyed on operand structure, so all three
            # algos share entries; every memo-served bucket call fused
            stats = session.stats()
            assert stats["bound_cache_hits"] >= len(BATCHABLE)
            assert stats["fused_numeric_hits"] == stats["bound_cache_hits"]

    def test_probe_histograms_match_between_tiers_for_hash(self, graph):
        g = graph
        exports = {}
        for tier in ("perrow", "bucket"):
            with _probes.probing() as pr:
                masked_spgemm(g, g, g, algo="hash", batch=tier,
                              semiring=PLUS_PAIR)
            exports[tier] = pr.export()
        # hash keeps the per-row tier's blocks, so every histogram —
        # probe chains included — must be bit-for-bit identical
        assert exports["perrow"] == exports["bucket"]


# ----------------------------------------------------------------------
# symbolic/numeric fusion
# ----------------------------------------------------------------------
class TestFusion:
    def test_fused_matches_two_pass(self, graph):
        g = graph
        for algo in BATCHABLE:
            for complement in (False, True):
                o1, c1 = _run(g, g, g, algo, "perrow", phases=2,
                              complement=complement, semiring=PLUS_PAIR)
                o2, c2 = _run(g, g, g, algo, "bucket", phases=2,
                              complement=complement, semiring=PLUS_PAIR)
                assert _identical(o1, o2), (algo, complement)
                assert c1 == c2, (algo, complement)

    def test_fused_output_is_clean_csr(self):
        g = rmat(6, seed=9).pattern().tril(-1)
        out = masked_spgemm(g, g, g, algo="hash", batch="bucket", phases=2,
                            semiring=PLUS_PAIR)
        assert out.sorted_indices
        assert int(out.indptr[-1]) == out.indices.shape[0] == out.data.shape[0]

    def test_fusion_requires_two_phases(self):
        # 1P has no symbolic bound: bucket tier must still assemble via COO
        g = rmat(6, seed=9).pattern().tril(-1)
        o1 = masked_spgemm(g, g, g, algo="msa", batch="bucket", phases=1,
                           semiring=PLUS_PAIR)
        o2 = masked_spgemm(g, g, g, algo="msa", batch="perrow", phases=1,
                           semiring=PLUS_PAIR)
        assert _identical(o1, o2)

    def test_session_fusion_telemetry_only_counts_memo_hits(self):
        g = rmat(6, seed=4).pattern().tril(-1)
        session = ExecutionSession()
        masked_spgemm(g, g, g, algo="hash", batch="bucket", phases=2,
                      semiring=PLUS_PAIR, session=session)
        assert session.stats()["fused_numeric_hits"] == 0  # first: a miss
        masked_spgemm(g, g, g, algo="hash", batch="bucket", phases=2,
                      semiring=PLUS_PAIR, session=session)
        assert session.stats()["fused_numeric_hits"] == 1


# ----------------------------------------------------------------------
# planner / plan reporting
# ----------------------------------------------------------------------
class TestPlanReporting:
    def test_bands_carry_batch_and_census(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        pl = Planner().plan(g, g, g, batch="bucket")
        d = pl.as_dict()
        assert d["bands"]
        for band, entry in zip(pl.bands, d["bands"]):
            assert entry["batch"] == band.batch
            assert entry["buckets"] == {int(k): int(v)
                                        for k, v in band.buckets.items()}
            assert band.batch in BATCH_TIERS

    def test_explain_renders_tier_and_census(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        text = Planner().plan(g, g, g, batch="bucket").explain()
        assert "batch=" in text and "buckets{" in text
        assert "batch tier forced to 'bucket' by caller" in text

    def test_auto_note_mentions_crossover(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        text = Planner().plan(g, g, g).explain()
        assert "crossover" in text and "batch tiers:" in text

    def test_machine_crossover_drives_auto(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        lo = MachineConfig(name="lo", cores=4, ghz=2.0, batch_crossover_flops=1)
        hi = MachineConfig(name="hi", cores=4, ghz=2.0,
                           batch_crossover_flops=1 << 60)
        pl_lo = Planner(lo).plan(g, g, g)
        pl_hi = Planner(hi).plan(g, g, g)
        batchable_lo = [b for b in pl_lo.bands if b.algo in BATCHABLE]
        if batchable_lo:
            assert all(b.batch == "bucket" for b in batchable_lo)
        assert all(
            b.batch == "perrow" for b in pl_hi.bands if b.algo in BATCHABLE
        )

    def test_invalid_batch_values_rejected(self):
        g = rmat(6, seed=5).pattern().tril(-1)
        with pytest.raises(ValueError, match="batch"):
            masked_spgemm(g, g, g, algo="msa", batch="bogus")
        with pytest.raises(ValueError, match="batch"):
            Planner().plan(g, g, g, batch="bogus")
        pl = Planner().plan(g, g, g)
        pl.bands[0].batch = "bogus"
        with pytest.raises(ValueError, match="batch tier"):
            pl.validate()

    def test_non_batchable_algos_pinned_perrow(self):
        g = rmat(7, seed=5).pattern().tril(-1)
        pl = Planner().plan(g, g, g, algo="inner", batch="bucket")
        assert all(b.batch == "perrow" for b in pl.bands)
        out = execute(pl, g, g, g, semiring=PLUS_PAIR)
        ref = masked_spgemm(g, g, g, algo="inner", semiring=PLUS_PAIR)
        assert _identical(out, ref)


# ----------------------------------------------------------------------
# compiled-tier seam
# ----------------------------------------------------------------------
class TestCompiledSeam:
    def test_status_shape(self):
        st = compiled_mod.status()
        assert set(st) == {"mode", "have_numba", "enabled"}
        assert st["mode"] in ("auto", "off", "require")

    def test_add_at_fallback_matches_ufunc(self):
        rng = np.random.default_rng(30)
        target = np.zeros(16)
        idx = rng.integers(0, 16, size=200).astype(np.int64)
        vals = rng.random(200)
        want = np.zeros(16)
        np.add.at(want, idx, vals)
        compiled_mod.add_at(target, idx, vals)
        assert np.array_equal(target, want)

    def test_seam_dispatches_compiled_when_eligible(self, monkeypatch):
        calls = []

        def fake(target, idx, vals):
            calls.append(idx.shape[0])
            np.add.at(target, idx, vals)  # same sequential semantics

        monkeypatch.setattr(compiled_mod, "_COMPILED_ADD_AT", fake)
        g = rmat(6, seed=3).pattern().tril(-1)
        ref = masked_spgemm(g, g, g, algo="msa", batch="perrow",
                            semiring=PLUS_PAIR)
        out = masked_spgemm(g, g, g, algo="msa", batch="bucket",
                            semiring=PLUS_PAIR)
        assert calls, "compiled seam was never exercised"
        assert _identical(out, ref)
        assert compiled_mod.compiled_enabled()

    def test_seam_bypasses_compiled_for_non_add_semirings(self, monkeypatch):
        def fake(target, idx, vals):  # pragma: no cover - must not run
            raise AssertionError("compiled path taken for a non-add semiring")

        monkeypatch.setattr(compiled_mod, "_COMPILED_ADD_AT", fake)
        target = np.full(4, np.inf)
        compiled_mod.add_at(
            target,
            np.array([1, 1], dtype=np.int64),
            np.array([3.0, 2.0]),
            add_ufunc=np.minimum,
        )
        assert target[1] == 2.0

    @pytest.mark.skipif(
        not compiled_mod.HAVE_NUMBA, reason="numba not installed"
    )
    def test_compiled_tier_bitwise_equivalence(self):
        # the numba CI leg runs this for real; local runs skip cleanly
        assert compiled_mod.compiled_enabled()
        g = rmat(7, seed=5).pattern().tril(-1)
        for algo in BATCHABLE:
            o1, c1 = _run(g, g, g, algo, "perrow", semiring=PLUS_PAIR)
            o2, c2 = _run(g, g, g, algo, "bucket", semiring=PLUS_PAIR)
            assert _identical(o1, o2) and c1 == c2
