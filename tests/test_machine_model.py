"""Tests for the cost model, traffic formulas and operation counters.

The cost model's *absolute* outputs are calibration, not truth; these tests
pin down (a) exact bookkeeping (flops, traffic formulas), (b) the paper's
qualitative orderings the whole reproduction rests on.
"""

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.machine import (
    HASWELL,
    KNL,
    MACHINES,
    MachineConfig,
    OpCounter,
    RowCostModel,
    estimate_row_cycles,
    estimate_seconds,
    flops_per_row,
    pull_traffic_words,
    push_common_traffic_words,
    total_flops,
    useful_flops_per_row,
)
from repro.sparse import CSR

from .conftest import random_csr


class TestFlopsAccounting:
    def test_flops_per_row_matches_bruteforce(self):
        a = random_csr(15, 12, 3, seed=1)
        b = random_csr(12, 10, 3, seed=2)
        fl = flops_per_row(a, b)
        da, db = a.to_dense() != 0, b.to_dense() != 0
        for i in range(15):
            expect = sum(db[k].sum() for k in np.nonzero(da[i])[0])
            assert fl[i] == expect

    def test_total_flops(self):
        a = random_csr(15, 12, 3, seed=3)
        b = random_csr(12, 10, 3, seed=4)
        assert total_flops(a, b) == flops_per_row(a, b).sum()

    def test_empty(self):
        assert total_flops(CSR.empty((5, 5)), CSR.empty((5, 5))) == 0

    def test_useful_flops_bounded(self):
        a = random_csr(15, 12, 4, seed=5)
        b = random_csr(12, 10, 4, seed=6)
        m = random_csr(15, 10, 4, seed=7)
        useful = useful_flops_per_row(a, b, m)
        assert np.all(useful <= flops_per_row(a, b))
        assert np.all(useful >= 0)

    def test_useful_flops_full_mask_is_all(self):
        a = random_csr(10, 10, 3, seed=8)
        b = random_csr(10, 10, 3, seed=9)
        full = CSR.from_dense(np.ones((10, 10)))
        assert np.array_equal(useful_flops_per_row(a, b, full), flops_per_row(a, b))

    def test_useful_flops_counted_by_reference(self):
        """Reference kernels' flop counter equals the exact useful flops."""
        from repro.core import masked_spgemm_reference

        a = random_csr(12, 12, 4, seed=10)
        b = random_csr(12, 12, 4, seed=11)
        m = random_csr(12, 12, 4, seed=12)
        c = OpCounter()
        masked_spgemm_reference(a, b, m, algo="msa", counter=c)
        assert c.flops == useful_flops_per_row(a, b, m).sum()


class TestTrafficFormulas:
    def test_pull_formula_verbatim(self):
        """Section 4.1: nnz(A) + nnz(M)(1 + nnz(B)/n)."""
        a = random_csr(20, 20, 4, seed=13)
        b = random_csr(20, 20, 4, seed=14)
        m = random_csr(20, 20, 4, seed=15)
        want = a.nnz + m.nnz * (1 + b.nnz / 20)
        assert pull_traffic_words(a, b, m) == pytest.approx(want)

    def test_push_common_patterns(self):
        a = random_csr(20, 20, 4, seed=16)
        b = random_csr(20, 20, 4, seed=17)
        t = push_common_traffic_words(a, b, line_words=8)
        assert t.read_inputs == 2 * a.nnz
        assert t.row_pointers == a.nnz * 8
        assert t.stanza_reads == 2 * total_flops(a, b)
        assert t.total == t.read_inputs + t.row_pointers + t.stanza_reads


class TestOpCounter:
    def test_merge(self):
        c1 = OpCounter(flops=3, hash_probes=2)
        c2 = OpCounter(flops=4, heap_pops=1)
        c1.merge(c2)
        assert c1.flops == 7
        assert c1.hash_probes == 2
        assert c1.heap_pops == 1

    def test_as_dict_copy(self):
        c = OpCounter(flops=5)
        d = c.copy()
        d.flops = 9
        assert c.flops == 5
        assert c.as_dict()["flops"] == 5

    def test_total_ops(self):
        c = OpCounter(flops=2, mask_scans=3)
        assert c.total_ops() == 5


class TestMachineConfigs:
    def test_presets(self):
        assert HASWELL.cores == 32
        assert KNL.cores == 68
        assert KNL.llc_bytes == 0  # the defining difference
        assert HASWELL.llc_bytes == 40 * 1024 * 1024
        assert set(MACHINES) == {"haswell", "knl"}

    def test_seconds_conversion(self):
        assert HASWELL.seconds(2.3e9) == pytest.approx(1.0)


class TestCostModelShapes:
    """The qualitative orderings of Sections 4.3 / 8 (the reproduction's
    load-bearing claims)."""

    def _times(self, a, b, m, machine=HASWELL, complement=False):
        model = RowCostModel(a, b, m, machine, complement=complement)
        out = {}
        for algo in ("inner", "msa", "hash", "heap", "heapdot", "mca"):
            if complement and algo in ("inner", "mca"):
                continue
            est = model.estimate(algo)
            out[algo] = est.total_cycles
        return out

    def test_inner_wins_sparse_mask(self):
        n = 2048
        a = erdos_renyi(n, n, 32, seed=1)
        b = erdos_renyi(n, n, 32, seed=2)
        m = erdos_renyi(n, n, 1, seed=3)
        t = self._times(a, b, m)
        assert t["inner"] == min(t.values())

    def test_heap_wins_sparse_inputs_dense_mask(self):
        n = 2048
        a = erdos_renyi(n, n, 1, seed=4)
        b = erdos_renyi(n, n, 1, seed=5)
        m = erdos_renyi(n, n, 48, seed=6)
        t = self._times(a, b, m)
        best = min(t, key=t.get)
        assert best in ("heap", "heapdot")

    def test_accumulators_win_comparable_density(self):
        n = 2048
        a = erdos_renyi(n, n, 16, seed=7)
        b = erdos_renyi(n, n, 16, seed=8)
        m = erdos_renyi(n, n, 32, seed=9)
        t = self._times(a, b, m)
        best = min(t, key=t.get)
        assert best in ("msa", "hash", "mca")

    def test_msa_beats_hash_small_hash_beats_msa_large(self):
        """MSA better on smaller matrices, Hash on larger (paper Sec. 8.1)."""
        small_n, large_n = 1024, 1 << 21
        for n, expect in ((small_n, "msa"), (large_n, "hash")):
            a = erdos_renyi(n, n, 8, seed=10)
            b = erdos_renyi(n, n, 8, seed=11)
            m = erdos_renyi(n, n, 8, seed=12)
            model = RowCostModel(a, b, m, HASWELL)
            msa = model.estimate("msa").total_cycles
            hsh = model.estimate("hash").total_cycles
            if expect == "msa":
                assert msa < hsh
            else:
                assert hsh < msa

    def test_one_phase_always_beats_two_phase(self):
        a = erdos_renyi(512, 512, 8, seed=13)
        b = erdos_renyi(512, 512, 8, seed=14)
        m = erdos_renyi(512, 512, 8, seed=15)
        model = RowCostModel(a, b, m, HASWELL)
        for algo in ("inner", "msa", "hash", "mca", "heap", "heapdot"):
            t1 = model.estimate(algo, phases=1).total_cycles
            t2 = model.estimate(algo, phases=2).total_cycles
            assert t1 < t2, algo

    def test_msa_relatively_better_on_haswell_than_knl(self):
        """The 40 MB L3 hides MSA's accumulator misses (paper Sec. 8.3)."""
        n = 1 << 17
        a = erdos_renyi(n, n, 4, seed=16)
        b = erdos_renyi(n, n, 4, seed=17)
        m = erdos_renyi(n, n, 4, seed=18)
        ratios = {}
        for mach in (HASWELL, KNL):
            model = RowCostModel(a, b, m, mach)
            msa = model.estimate("msa").total_cycles
            hsh = model.estimate("hash").total_cycles
            ratios[mach.name] = msa / hsh
        assert ratios["haswell"] < ratios["knl"]

    def test_ssgb_saxpy_wastes_work_on_sparse_mask(self):
        n = 2048
        a = erdos_renyi(n, n, 16, seed=19)
        b = erdos_renyi(n, n, 16, seed=20)
        m = erdos_renyi(n, n, 1, seed=21)
        model = RowCostModel(a, b, m, HASWELL)
        ours = model.estimate("inner").total_cycles
        saxpy = model.estimate("ssgb_saxpy").total_cycles
        assert ours < saxpy

    def test_complement_supported_subset(self):
        a = erdos_renyi(128, 128, 4, seed=22)
        m = erdos_renyi(128, 128, 4, seed=23)
        model = RowCostModel(a, a, m, HASWELL, complement=True)
        for algo in ("msa", "hash", "heap", "heapdot", "ssgb_dot", "ssgb_saxpy"):
            assert model.estimate(algo).total_cycles > 0
        with pytest.raises(ValueError):
            model.estimate("inner")
        with pytest.raises(ValueError):
            model.estimate("mca")

    def test_unknown_algo_rejected(self):
        a = erdos_renyi(32, 32, 2, seed=24)
        with pytest.raises(ValueError, match="unknown"):
            RowCostModel(a, a, a, HASWELL).estimate("nope")


class TestEstimateHelpers:
    def test_estimate_row_cycles_shape(self):
        a = erdos_renyi(64, 64, 4, seed=25)
        est = estimate_row_cycles(a, a, a, "msa", HASWELL)
        assert est.row_cycles.shape == (64,)
        assert est.total_cycles > 0
        assert "accumulator" in est.breakdown

    def test_estimate_seconds_scales_with_threads(self):
        a = erdos_renyi(256, 256, 8, seed=26)
        t1 = estimate_seconds(a, a, a, "msa", HASWELL, threads=1)
        t32 = estimate_seconds(a, a, a, "msa", HASWELL, threads=32)
        assert t32 < t1
        assert t1 / t32 <= 32 + 1e-9

    def test_model_estimate_seconds_method(self):
        a = erdos_renyi(64, 64, 4, seed=27)
        est = estimate_row_cycles(a, a, a, "hash", HASWELL)
        assert est.seconds(HASWELL, threads=2) < est.seconds(HASWELL, threads=1)

    def test_shape_validation(self):
        a = erdos_renyi(8, 9, 2, seed=28)
        b = erdos_renyi(9, 7, 2, seed=29)
        m_bad = erdos_renyi(8, 8, 2, seed=30)
        with pytest.raises(ValueError, match="mask shape"):
            RowCostModel(a, b, m_bad, HASWELL)
        with pytest.raises(ValueError, match="inner dimensions"):
            RowCostModel(a, a, m_bad, HASWELL)


class TestExplainReport:
    def test_breakdown_table_covers_algos(self):
        from repro.machine import breakdown_table

        a = erdos_renyi(128, 128, 4, seed=40)
        m = erdos_renyi(128, 128, 4, seed=41)
        table = breakdown_table(a, a, m)
        assert "msa" in table and "esc" in table
        for row in table.values():
            assert row["TOTAL"] > 0

    def test_explain_orders_cheapest_first(self):
        from repro.machine import explain

        a = erdos_renyi(256, 256, 8, seed=42)
        m = erdos_renyi(256, 256, 2, seed=43)
        text = explain(a, a, m)
        lines = [l for l in text.splitlines()[1:] if l.strip()]
        assert len(lines) >= 5
        # totals parse and are non-decreasing
        totals = [float(l.split()[1]) for l in lines]
        assert totals == sorted(totals)
        assert "cycles" in text

    def test_explain_complement_drops_inner_mca(self):
        from repro.machine import explain

        a = erdos_renyi(64, 64, 3, seed=44)
        m = erdos_renyi(64, 64, 3, seed=45)
        text = explain(a, a, m, complement=True)
        assert "inner" not in text.split("complement")[1]
        assert "mca " not in text
