"""Figure 8 — Triangle Counting performance profiles of our 12 schemes over
the 26-graph suite.

Paper claims asserted here (Section 8.2):

* MSA-1P is the best scheme, winning ~65% of the test cases.
* MCA-1P is the runner-up; Inner and Hash follow.
* Heap and HeapDot are the worst.
* Every 1P variant beats its own 2P variant overall.
"""

import pytest

from repro.bench import OUR_SCHEMES, fig08_tc_profiles, render_profile
from repro.semiring import PLUS_PAIR

from conftest import MEASURED, SCALE


def test_fig08_tc_profiles_model(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig08_tc_profiles(scale_factor=SCALE, mode="model"),
        rounds=1,
        iterations=1,
    )
    title = "Figure 8 — TC performance profiles (model, haswell)"
    save_result(
        render_profile(prof, title=title),
        data={"schemes": prof.schemes, "cases": prof.cases,
              "ratios": prof.ratios, "ranking": prof.ranking()},
        title=title,
    )

    assert len(prof.cases) == 26
    ranking = prof.ranking()

    # MSA-1P is the overall best scheme and wins the most cases
    assert ranking[0] == "MSA-1P"
    best_frac = prof.fraction_best("MSA-1P")
    assert best_frac >= 0.5, f"MSA-1P won only {best_frac:.0%} (paper: ~65%)"
    assert best_frac == max(prof.fraction_best(s.name) for s in OUR_SCHEMES)

    # MCA-1P is among the top three schemes
    assert "MCA-1P" in ranking[:3]

    # heap-based schemes are noncompetitive (bottom half)
    for heap_scheme in ("Heap-1P", "Heap-2P", "HeapDot-2P"):
        assert ranking.index(heap_scheme) >= 5, heap_scheme

    # one-phase beats two-phase for every algorithm (profile-area order)
    for algo in ("Inner", "MSA", "Hash", "MCA", "Heap", "HeapDot"):
        assert prof.area(f"{algo}-1P") >= prof.area(f"{algo}-2P"), algo


@pytest.mark.skipif(not MEASURED, reason="set REPRO_MEASURED=1 for wall-clock mode")
def test_fig08_tc_profiles_measured(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig08_tc_profiles(scale_factor=SCALE, mode="measured"),
        rounds=1,
        iterations=1,
    )
    save_result(render_profile(
        prof, title="Figure 8 — TC performance profiles (measured wall-clock)"
    ))
    # wall-clock sanity: the masked fast kernels must beat nothing-masked
    # schemes often enough to be top-3 overall
    assert set(prof.ranking()[:3]) & {"MSA-1P", "Hash-1P", "MCA-1P", "Inner-1P"}
