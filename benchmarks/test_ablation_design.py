"""Ablations of the design choices DESIGN.md calls out:

* heap NInspect parameter (0 / 1 / inf) — operation-count tradeoff
  (Section 5.5);
* hash load factor — probe-count sensitivity (Section 5.3's 0.25 choice);
* 1P scratch sizing: mask bound vs flops upper bound (Section 6);
* symbolic-phase overhead across the suite (the 2P tax).
"""

import numpy as np
import pytest

from repro.core import masked_spgemm_reference, one_phase_bound
from repro.core.accumulators.hash import table_capacity
from repro.graphs import erdos_renyi, load
from repro.machine import OpCounter, flops_per_row, total_flops
from repro.semiring import PLUS_TIMES


class TestNInspectAblation:
    def _heap_ops(self, n_inspect, a, b, m):
        """Run the reference heap kernel at a given NInspect and collect
        counters (monkey-level: heapdot == inf, heap == 1)."""
        from repro.core.reference import spgevm_heap

        counter = OpCounter()
        a = a.sort_indices()
        b = b.sort_indices()
        m = m.sort_indices()
        for i in range(a.nrows):
            mc, _ = m.row(i)
            uc, uv = a.row(i)
            if len(mc) == 0 or len(uc) == 0:
                continue
            spgevm_heap(mc, uc, uv, b, PLUS_TIMES, counter, n_inspect)
        return counter

    def test_ninspect_tradeoff(self, benchmark, save_result):
        a = erdos_renyi(512, 512, 4, seed=1)
        b = erdos_renyi(512, 512, 4, seed=2)
        m = erdos_renyi(512, 512, 16, seed=3)

        def run():
            return {
                ni: self._heap_ops(ni, a, b, m)
                for ni in (0, 1, float("inf"))
            }

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        lines = ["NInspect ablation (heap pushes / mask scans):"]
        for ni, c in res.items():
            lines.append(
                f"  NInspect={ni}: pushes={c.heap_pushes} scans={c.mask_scans} "
                f"flops={c.flops}"
            )
        save_result("\n".join(lines))

        # more inspection -> fewer heap pushes, more mask scans
        assert res[float("inf")].heap_pushes <= res[1].heap_pushes
        assert res[1].heap_pushes <= res[0].heap_pushes
        assert res[float("inf")].mask_scans >= res[1].mask_scans
        # all variants compute the same masked product (same useful flops)
        assert res[0].flops == res[1].flops == res[float("inf")].flops


class TestHashLoadFactor:
    @pytest.mark.parametrize("load", [0.125, 0.25, 0.5, 0.9])
    def test_capacity_monotone(self, benchmark, load):
        cap = benchmark.pedantic(
            lambda: table_capacity(1000, load), rounds=1, iterations=1
        )
        assert cap >= 1000 / load

    def test_probe_counts_grow_with_load(self, benchmark, save_result):
        """Fuller tables probe more — the reason the paper fixes 0.25."""
        from repro.core.accumulators import HashAccumulator

        rng = np.random.default_rng(0)
        keys = rng.choice(100000, size=500, replace=False)

        def probes_at(load):
            acc = HashAccumulator.__new__(HashAccumulator)
            from repro.core.accumulators.hash import _OpenAddressTable
            from repro.machine import OpCounter as OC

            counter = OC()
            cap = table_capacity(len(keys), load)
            table = _OpenAddressTable(cap, 0.0, counter)
            for k in keys:
                table.slot(int(k), create=True)
            return counter.hash_probes / len(keys)

        def run():
            return {load: probes_at(load) for load in (0.125, 0.25, 0.5, 0.9)}

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        save_result(
            "Hash load-factor ablation (avg probes/insert): "
            + ", ".join(f"{k}: {v:.2f}" for k, v in res.items())
        )
        assert res[0.125] <= res[0.25] <= res[0.5] <= res[0.9]
        assert res[0.25] < 1.5  # the paper's choice keeps chains short


class TestOnePhaseScratchSizing:
    def test_mask_bound_far_below_flops_bound(self, benchmark, save_result):
        """Section 6: the mask is a good output-size approximation — the 1P
        scratch sized by the mask is much smaller than the flops upper
        bound a plain-SpGEMM 1P scheme would need."""
        g = load("rmat-12")
        low = g.tril(-1)

        def run():
            _, mask_bound = one_phase_bound(low, low, low)
            flops_bound = total_flops(low, low)
            c = OpCounter()
            out = masked_spgemm_reference(low, low, low, algo="msa", counter=c)
            return mask_bound, flops_bound, out.nnz

        mask_bound, flops_bound, out_nnz = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        save_result(
            f"1P scratch sizing: output={out_nnz}, mask bound={mask_bound}, "
            f"flops bound={flops_bound} "
            f"(mask bound is {flops_bound / max(1, mask_bound):.1f}x tighter)"
        )
        assert out_nnz <= mask_bound <= flops_bound
        assert mask_bound < 0.5 * flops_bound

    def test_per_row_bound_tightness(self, benchmark):
        a = erdos_renyi(256, 256, 6, seed=7)
        m = erdos_renyi(256, 256, 6, seed=8)

        def run():
            bound, _ = one_phase_bound(a, a, m)
            fl = flops_per_row(a, a)
            return bound, fl

        bound, fl = benchmark.pedantic(run, rounds=1, iterations=1)
        assert np.all(bound <= np.minimum(m.row_nnz(), fl))


class TestSymbolicOverhead:
    def test_two_phase_tax_across_suite(self, benchmark, save_result):
        """The 2P symbolic sweep re-traverses all flops — the reason 1P
        wins for masked SpGEMM (Section 6 / all profile figures)."""
        from repro.core import symbolic_masked

        names = ["er-mid-s", "rmat-10", "smallworld-s"]

        def run():
            taxes = {}
            for name in names:
                g = load(name).tril(-1)
                c = OpCounter()
                symbolic_masked(g, g, g, counter=c)
                useful = OpCounter()
                masked_spgemm_reference(g, g, g, algo="msa", counter=useful)
                taxes[name] = c.symbolic_flops / max(1, useful.flops)
            return taxes

        taxes = benchmark.pedantic(run, rounds=1, iterations=1)
        save_result(
            "2P symbolic tax (symbolic flops / useful numeric flops): "
            + ", ".join(f"{k}: {v:.1f}x" for k, v in taxes.items())
        )
        # the symbolic sweep always costs at least the useful numeric work
        for name, tax in taxes.items():
            assert tax >= 1.0, name
