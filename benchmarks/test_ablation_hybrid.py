"""Ablation — the hybrid per-row dispatcher (the paper's future work,
Section 9).

The hybrid routes each output row to the accumulator the Figure-7 regimes
favour.  This bench builds a *mixed-regime* problem (half the rows are
mask-sparse pull territory, half are comparable-density push territory) and
shows the hybrid's modeled cost beating every fixed single-algorithm
scheme, plus a wall-clock correctness/overhead check of the real hybrid
kernel.
"""

import numpy as np
import pytest

from repro.baselines import scipy_masked_spgemm
from repro.core import classify_rows, masked_spgemm, masked_spgemm_hybrid
from repro.graphs import erdos_renyi
from repro.machine import HASWELL, RowCostModel, simulate_makespan
from repro.sparse import CSR


def mixed_regime_problem(n=4096, seed=0):
    """Rows 0..n/2: dense inputs + sparse mask (inner regime).
    Rows n/2..n: sparse inputs + dense mask (push/mca regime)."""
    rng = np.random.default_rng(seed)
    half = n // 2

    def band(nr_lo, nr_hi, deg, ncols):
        m = int((nr_hi - nr_lo) * deg)
        rows = rng.integers(nr_lo, nr_hi, size=m)
        cols = rng.integers(0, ncols, size=m)
        return rows, cols

    ar1 = band(0, half, 48, n)
    ar2 = band(half, n, 2, n)
    a = CSR.from_coo(
        (n, n),
        np.concatenate([ar1[0], ar2[0]]),
        np.concatenate([ar1[1], ar2[1]]),
        np.ones(ar1[0].shape[0] + ar2[0].shape[0]),
    ).pattern()
    b = erdos_renyi(n, n, 16, seed=seed + 1)
    mr1 = band(0, half, 1, n)
    mr2 = band(half, n, 48, n)
    mask = CSR.from_coo(
        (n, n),
        np.concatenate([mr1[0], mr2[0]]),
        np.concatenate([mr1[1], mr2[1]]),
        np.ones(mr1[0].shape[0] + mr2[0].shape[0]),
    ).pattern()
    return a, b, mask


def test_hybrid_modeled_cost_beats_fixed_schemes(benchmark, save_result):
    a, b, mask = mixed_regime_problem()

    def run():
        model = RowCostModel(a, b, mask, HASWELL)
        fixed = {}
        per_algo_rows = {}
        for algo in ("inner", "msa", "hash", "mca"):
            est = model.estimate(algo)
            per_algo_rows[algo] = est.row_cycles
            fixed[algo] = simulate_makespan(est.row_cycles, 32, chunk=8)
        # hybrid: per-row minimum over the routed classes
        classes = classify_rows(a, b, mask, HASWELL)
        hybrid_rows = np.zeros(a.nrows)
        for algo, rows in classes.items():
            hybrid_rows[rows] = per_algo_rows[algo][rows]
        fixed["hybrid"] = simulate_makespan(hybrid_rows, 32, chunk=8)
        return fixed

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Hybrid ablation (modeled makespan cycles, mixed-regime input):"]
    for name, v in sorted(spans.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:8s} {v:.4e}")
    save_result("\n".join(lines))

    fixed_best = min(v for k, v in spans.items() if k != "hybrid")
    assert spans["hybrid"] <= fixed_best * 1.001


def test_hybrid_wallclock_correct_and_competitive(benchmark):
    a, b, mask = mixed_regime_problem(n=2048, seed=3)
    got = benchmark.pedantic(
        lambda: masked_spgemm_hybrid(a, b, mask), rounds=1, iterations=1
    )
    want = scipy_masked_spgemm(a, b, mask)
    assert got.drop_zeros(1e-14).equals(want)


@pytest.mark.parametrize("pull_ratio", [2.0, 8.0, 32.0])
def test_hybrid_threshold_sweep(benchmark, pull_ratio):
    """Routing-threshold ablation: results must be identical regardless of
    thresholds; only the routing (and hence cost) changes."""
    a, b, mask = mixed_regime_problem(n=1024, seed=5)
    got = benchmark.pedantic(
        lambda: masked_spgemm_hybrid(a, b, mask, pull_ratio=pull_ratio),
        rounds=1,
        iterations=1,
    )
    want = scipy_masked_spgemm(a, b, mask)
    assert got.drop_zeros(1e-14).equals(want)
