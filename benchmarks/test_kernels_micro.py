"""Wall-clock microbenchmarks of the vectorized kernels.

These are honest pytest-benchmark timings of the real fast kernels in this
process — the per-kernel numbers a user of the library would see.  They
also assert the one wall-clock comparison that survives CPython overheads:
masked kernels beating multiply-then-mask when the mask is selective
(Figure 1's motivation).
"""

import pytest

from repro.core import masked_spgemm, masked_spgemm_multiply_then_mask
from repro.core.kernels import spgemm_saxpy_fast
from repro.baselines import ssgb_saxpy
from repro.graphs import erdos_renyi, rmat
from repro.semiring import PLUS_PAIR
from repro.sparse import CSC


@pytest.fixture(scope="module")
def problem():
    n = 20000
    a = erdos_renyi(n, n, 12, seed=1)
    b = erdos_renyi(n, n, 12, seed=2)
    m = erdos_renyi(n, n, 8, seed=3)
    return a, b, m


@pytest.fixture(scope="module")
def sparse_mask_problem():
    n = 20000
    a = erdos_renyi(n, n, 16, seed=4)
    b = erdos_renyi(n, n, 16, seed=5)
    m = erdos_renyi(n, n, 1, seed=6)
    return a, b, m


@pytest.mark.parametrize("algo", ["msa", "hash", "mca", "inner"])
def test_masked_spgemm_kernel(benchmark, algo, problem):
    a, b, m = problem
    b_csc = CSC.from_csr(b) if algo == "inner" else None
    result = benchmark(
        lambda: masked_spgemm(a, b, m, algo=algo, b_csc=b_csc)
    )
    assert result.nnz > 0


def test_multiply_then_mask_baseline(benchmark, problem):
    a, b, m = problem
    result = benchmark(lambda: masked_spgemm_multiply_then_mask(a, b, m))
    assert result.nnz > 0


def test_plain_spgemm(benchmark, problem):
    a, b, _ = problem
    result = benchmark(lambda: spgemm_saxpy_fast(a, b))
    assert result.nnz > 0


def test_masked_beats_multiply_then_mask_on_sparse_mask(
    benchmark, sparse_mask_problem
):
    """Wall-clock confirmation of the paper's core motivation: with a
    selective mask, mask-aware kernels avoid most of the work."""
    import time

    a, b, m = sparse_mask_problem

    def timed(fn):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def run():
        t_inner = timed(lambda: masked_spgemm(a, b, m, algo="inner"))
        t_naive = timed(lambda: masked_spgemm_multiply_then_mask(a, b, m))
        return t_inner, t_naive

    t_inner, t_naive = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_inner < t_naive, (t_inner, t_naive)


@pytest.mark.parametrize("algo", ["msa", "hash"])
def test_complement_kernel(benchmark, algo):
    n = 4000
    a = erdos_renyi(n, n, 6, seed=7)
    b = erdos_renyi(n, n, 6, seed=8)
    m = erdos_renyi(n, n, 6, seed=9)
    result = benchmark(
        lambda: masked_spgemm(a, b, m, algo=algo, complement=True)
    )
    assert result.nnz > 0


def test_tc_on_rmat(benchmark):
    from repro.apps import triangle_count

    g = rmat(12, seed=10)
    tri = benchmark(lambda: triangle_count(g, algo="msa"))
    assert tri > 0


def test_ssgb_saxpy_baseline(benchmark, problem):
    a, b, m = problem
    result = benchmark(lambda: ssgb_saxpy(a, b, m, semiring=PLUS_PAIR))
    assert result.nnz > 0
