"""Benchmark — does the machine model predict this process's wall clock?

The cost model carries the paper's architectural claims; the fast kernels
give real wall-clock.  This bench cross-validates them: over a spread of
(graph, algorithm) cases, modeled times (calibrated to THIS host via
``calibrate_machine``) must rank-correlate with measured wall times.

A perfect correlation is impossible (Python-level constants differ per
kernel), so we assert a positive Spearman rank correlation and that the
modeled per-case *winner* is within the measured top-2 in most cases.
"""

import numpy as np
import scipy.stats

from repro.bench import measured_seconds, modeled_seconds, scheme_by_name, tc_cases
from repro.graphs import load
from repro.machine import calibrate_machine
from repro.semiring import PLUS_PAIR

SCHEMES = ["MSA-1P", "Hash-1P", "MCA-1P", "Inner-1P"]
GRAPHS = ["er-mid-s", "er-dense-s", "rmat-10", "rmat-11", "smallworld-s",
          "powerlaw-s", "grid2d-s", "road-s"]


def test_model_rank_correlates_with_wallclock(benchmark, save_result):
    machine = calibrate_machine(quick=True)

    def run():
        graphs = {name: load(name) for name in GRAPHS}
        cases = tc_cases(graphs)
        modeled = {}
        measured = {}
        for name in GRAPHS:
            calls = cases[name]
            for sname in SCHEMES:
                s = scheme_by_name(sname)
                modeled[(name, sname)] = modeled_seconds(
                    s, calls, machine=machine, threads=1
                )
                measured[(name, sname)] = measured_seconds(
                    s, calls, semiring=PLUS_PAIR, repeats=3
                )
        return modeled, measured

    modeled, measured = benchmark.pedantic(run, rounds=1, iterations=1)

    keys = sorted(modeled)
    mo = np.array([modeled[k] for k in keys])
    me = np.array([measured[k] for k in keys])
    rho, _ = scipy.stats.spearmanr(mo, me)

    # per-graph winner agreement
    agree = 0
    for g in GRAPHS:
        mod_rank = sorted(SCHEMES, key=lambda s: modeled[(g, s)])
        meas_rank = sorted(SCHEMES, key=lambda s: measured[(g, s)])
        if mod_rank[0] in meas_rank[:2]:
            agree += 1

    lines = [f"Model-vs-wallclock validation (calibrated '{machine.name}'):",
             f"  Spearman rank correlation over "
             f"{len(keys)} (graph, scheme) cases: {rho:.3f}",
             f"  modeled winner in measured top-2: {agree}/{len(GRAPHS)} graphs"]
    for g in GRAPHS:
        mod_best = min(SCHEMES, key=lambda s: modeled[(g, s)])
        meas_best = min(SCHEMES, key=lambda s: measured[(g, s)])
        lines.append(f"    {g:14s} model: {mod_best:9s} measured: {meas_best}")
    save_result("\n".join(lines))

    assert rho > 0.4, f"rank correlation too weak: {rho:.3f}"
    # winner agreement is noisy on a loaded machine (the four fast kernels
    # are within ~2x of each other on many graphs); require only that the
    # model is right more often than chance would put a fixed guess in the
    # top-2 of 4 schemes on a third of graphs
    assert agree >= max(2, len(GRAPHS) // 3), f"winner agreement {agree}/{len(GRAPHS)}"
