"""Session reuse A/B: shared vs per-call execution sessions.

The tentpole claim of the execution-session layer, asserted end to end:
running the paper's iterative workloads (k-truss Section 8.3, batched BC
Section 8.4) with one long-lived :class:`~repro.engine.ExecutionSession`
must

* produce **bit-for-bit identical** results to the cold-start path
  (always asserted, any machine), while
* actually hitting the caches — ``plan_cache_hits`` and (on the process
  backend) ``segments_reused`` strictly positive — and
* run **measurably faster** than cold starts on the process backend,
  where republishing every operand each call is the dominant per-call
  overhead.  The speedup assertion is gated on ``cpu_count >= 4``: on
  smaller machines the process pool exists but parallel wins (and hence
  stable timing contrast) do not.

Both arms use *identical* plan knobs (same ``plan_defaults``), so the
measured delta is purely cross-call persistence: the cold arm opens a
fresh session per call and closes it (plan cache, memos and shm segments
all drop between calls — exactly what ``session=None`` apps do today),
while the warm arm shares one session across every call.

Each test writes a ``.json`` twin carrying the timings and the warm
session's cache telemetry so a results directory documents the reuse,
not just the ratio.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.apps import betweenness_centrality, ktruss
from repro.engine import ExecutionSession
from repro.graphs import rmat
from repro.machine import OpCounter
from repro.parallel import process_backend_available, shutdown_pool

MANY_CORES = (os.cpu_count() or 1) >= 4

#: both arms run the same forced-parallel process-backend plans; only the
#: session lifetime differs
PLAN_DEFAULTS = {"threads": 4, "backend": "process"}


def _ab_timing(run, repeats=3):
    """(best_cold_s, best_warm_s, warm_stats, cold_result, warm_result).

    ``run(session)`` executes one app call.  Cold arm: a fresh session per
    call, closed after it.  Warm arm: all ``repeats`` calls share one
    session, so later passes hit the caches exactly as an iterative
    caller's would.
    """
    cold_best, cold_res = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        with ExecutionSession(plan_defaults=dict(PLAN_DEFAULTS)) as s:
            cold_res = run(s)
        cold_best = min(cold_best, time.perf_counter() - t0)
    warm_best, warm_res = float("inf"), None
    with ExecutionSession(plan_defaults=dict(PLAN_DEFAULTS)) as session:
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm_res = run(session)
            warm_best = min(warm_best, time.perf_counter() - t0)
        stats = session.stats()
    return cold_best, warm_best, stats, cold_res, warm_res


def test_ktruss_session_reuse(benchmark, save_result):
    """Shared-session k-truss: structure shrinks every round inside a call,
    so cross-call wins come from the input graph's segments and the warm
    plan cache replaying the identical iteration sequence."""
    if not process_backend_available():
        import pytest

        pytest.skip("no process backend")
    g = rmat(10, seed=13)
    counter = OpCounter()

    def run(session):
        return ktruss(g, 5, algo="auto", counter=counter, session=session)

    try:
        cold_s, warm_s, stats, cold, warm = benchmark.pedantic(
            lambda: _ab_timing(run), rounds=1, iterations=1
        )
    finally:
        shutdown_pool()

    assert np.array_equal(warm.truss.to_dense(), cold.truss.to_dense())
    assert warm.iterations == cold.iterations
    assert stats["plan_cache_hits"] > 0
    assert stats["segments_reused"] > 0
    assert counter.segments_reused > 0

    data = {
        "graph": "rmat-10", "k": 5, "plan_defaults": PLAN_DEFAULTS,
        "cold_best_s": cold_s, "warm_best_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "session": stats,
    }
    save_result(
        f"k-truss (k=5, rmat-10, process backend): "
        f"per-call session {cold_s * 1e3:.1f} ms, shared {warm_s * 1e3:.1f} ms "
        f"({data['speedup']:.2f}x); plan hits {stats['plan_cache_hits']}, "
        f"segments reused {stats['segments_reused']}",
        data=data, title="session reuse — k-truss",
    )
    if MANY_CORES:
        assert warm_s < cold_s, (
            f"shared-session k-truss not faster: {warm_s:.4f}s vs {cold_s:.4f}s"
        )


def test_bc_session_reuse(benchmark, save_result):
    """Shared-session batched BC: the paper's best case — ``A`` and ``A^T``
    are constant across every level of every call, so after the first call
    the big operands are served entirely from the segment registry and the
    CSC memo."""
    if not process_backend_available():
        import pytest

        pytest.skip("no process backend")
    g = rmat(10, seed=17)
    counter = OpCounter()

    def run(session):
        return betweenness_centrality(
            g, batch_size=64, algo="auto", seed=1,
            counter=counter, session=session,
        )

    try:
        cold_s, warm_s, stats, cold, warm = benchmark.pedantic(
            lambda: _ab_timing(run), rounds=1, iterations=1
        )
    finally:
        shutdown_pool()

    assert np.array_equal(warm.centrality, cold.centrality)
    assert warm.depth == cold.depth
    assert stats["plan_cache_hits"] > 0
    assert stats["segments_reused"] > 0
    assert stats["csc_cache_hits"] > 0
    assert counter.segments_reused > 0

    data = {
        "graph": "rmat-10", "batch": 64, "plan_defaults": PLAN_DEFAULTS,
        "cold_best_s": cold_s, "warm_best_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "session": stats,
    }
    save_result(
        f"BC (batch 64, rmat-10, process backend): "
        f"per-call session {cold_s * 1e3:.1f} ms, shared {warm_s * 1e3:.1f} ms "
        f"({data['speedup']:.2f}x); plan hits {stats['plan_cache_hits']}, "
        f"segments reused {stats['segments_reused']}, "
        f"csc hits {stats['csc_cache_hits']}",
        data=data, title="session reuse — betweenness centrality",
    )
    if MANY_CORES:
        assert warm_s < cold_s, (
            f"shared-session BC not faster: {warm_s:.4f}s vs {cold_s:.4f}s"
        )
