"""Benchmark — serial vs thread vs process backend wall-clock scaling.

The process backend exists because CPython threads cannot scale the
Python-level portions of the kernels (the GIL); worker processes with
shared-memory operands can.  This bench measures the R-MAT triangle-counting
SpGEMM (``L .* (L @ L)``, the paper's TC workload) under all three backends
at 1/2/4/8 workers and records the results as JSON in
``benchmarks/results/``.

Honesty policy (same as test_real_threads.py): this container may be
single-core, where *no* backend can win in wall clock.  The speedup
assertion (process >= 1.5x serial at 4 workers, an ISSUE acceptance
criterion) therefore only fires when the host actually has >= 4 CPUs;
otherwise the numbers are recorded for inspection and only sanity bounds
are enforced.  Bitwise equality across backends is asserted always.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.graphs import rmat
from repro.parallel import (
    active_segments,
    parallel_masked_spgemm,
    shutdown_pool,
)
from repro.semiring import PLUS_PAIR

WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("serial", "thread", "process")


def _tc_operands(scale=10, seed=9):
    """Lower-triangular R-MAT adjacency: the TC masked-SpGEMM operand."""
    g = rmat(scale, seed=seed)
    low = g.pattern().tril(-1)
    return low


def _timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_backend_scaling_rmat_tc(benchmark, results_dir, save_result):
    low = _tc_operands()

    def spgemm(backend, workers):
        return parallel_masked_spgemm(
            low, low, low, algo="msa", threads=workers,
            backend=backend, semiring=PLUS_PAIR,
        )

    def run():
        # warm the process pool once so spawn cost is not charged to the
        # per-call numbers (the persistent pool amortises it in real use;
        # spawn is recorded separately)
        t0 = time.perf_counter()
        spgemm("process", max(WORKER_COUNTS))
        spawn_seconds = time.perf_counter() - t0
        times = {}
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                if backend == "serial" and workers > 1:
                    continue  # serial ignores worker count
                times[(backend, workers)] = _timed(
                    lambda: spgemm(backend, workers)
                )
        return times, spawn_seconds

    times, spawn_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- bitwise equivalence across every backend/worker combination ---
    ref = spgemm("serial", 1)
    for backend in BACKENDS:
        for workers in WORKER_COUNTS:
            got = spgemm(backend, workers)
            assert np.array_equal(got.indptr, ref.indptr), (backend, workers)
            assert np.array_equal(got.indices, ref.indices), (backend, workers)
            assert np.array_equal(got.data, ref.data), (backend, workers)

    base = times[("serial", 1)]
    cpus = os.cpu_count() or 1
    record = {
        "workload": "rmat scale=10 triangle-count spgemm (msa, plus_pair)",
        "nnz": int(low.nnz),
        "cpu_count": cpus,
        "process_pool_spawn_seconds": spawn_seconds,
        "serial_seconds": base,
        "runs": [
            {
                "backend": backend,
                "workers": workers,
                "seconds": t,
                "speedup_vs_serial": base / t,
            }
            for (backend, workers), t in sorted(times.items())
        ],
    }
    lines = [f"Backend scaling, R-MAT TC (cpu_count={cpus}):"]
    for (backend, workers), t in sorted(times.items()):
        lines.append(
            f"  {backend:>7s} x{workers}: {t * 1e3:8.1f} ms  "
            f"speedup {base / t:4.2f}x"
        )
    save_result("\n".join(lines), data=record,
                title="serial vs thread vs process backend scaling")

    # sanity bound everywhere: no backend may catastrophically regress
    for key, t in times.items():
        assert t < 10.0 * base, (key, t, base)
    # the acceptance criterion needs real cores to be meaningful
    if cpus >= 4:
        assert base / times[("process", 4)] > 1.5, times

    shutdown_pool()
    assert active_segments() == ()
