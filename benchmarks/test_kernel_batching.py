"""Batched-tier A/B — bucketed vs per-row dispatch on the Fig. 10 TC case.

Wall-clock measurement (always on — the comparison IS the experiment):
the Figure 10 R-MAT triangle-count masked SpGEMM, run serially under
``batch="perrow"`` and ``batch="bucket"`` for each batchable kernel
(MSA / hash / ESC).  Both tiers are bit-for-bit identical
(`tests/test_batch.py` proves it), so any wall-clock gap is pure
dispatch-overhead elimination.

Asserted: the bucketed tier beats per-row dispatch by >= 2x on the
aggregate TC time across the three kernels (the hash kernel — the only
one with a genuinely per-row inner loop — carries most of that; its
individual factor is larger and reported, not asserted).  Outputs are
spot-checked identical here as a cheap tripwire; the exhaustive
equivalence lives in the `batch` test suite.
"""

import time

import numpy as np
import pytest

from repro.core import masked_spgemm
from repro.graphs import rmat
from repro.semiring import PLUS_PAIR

SCALE = 13
REPEATS = 5
KERNELS = ("msa", "hash", "esc")
MIN_AGGREGATE_SPEEDUP = 2.0


def _tc_case():
    low = rmat(SCALE, seed=1).pattern().tril(-1)
    return low


def _median_time(fn):
    samples = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_bucketed_tier_beats_perrow_on_fig10_tc(benchmark, save_result):
    low = _tc_case()

    def ab_run():
        medians = {"perrow": {}, "bucket": {}}
        outputs = {}
        for tier in ("perrow", "bucket"):
            for algo in KERNELS:
                outputs[(tier, algo)] = masked_spgemm(
                    low, low, low, algo=algo, batch=tier, semiring=PLUS_PAIR
                )
                medians[tier][algo] = _median_time(
                    lambda: masked_spgemm(
                        low, low, low, algo=algo, batch=tier,
                        semiring=PLUS_PAIR,
                    )
                )
        return medians, outputs

    medians, outputs = benchmark.pedantic(ab_run, rounds=1, iterations=1)

    # tripwire: identical results (the batch suite proves this exhaustively)
    for algo in KERNELS:
        o1, o2 = outputs[("perrow", algo)], outputs[("bucket", algo)]
        assert np.array_equal(o1.indptr, o2.indptr), algo
        assert np.array_equal(o1.indices, o2.indices), algo
        assert np.array_equal(o1.data, o2.data), algo

    perrow_total = sum(medians["perrow"].values())
    bucket_total = sum(medians["bucket"].values())
    aggregate = perrow_total / bucket_total
    per_kernel = {
        algo: medians["perrow"][algo] / medians["bucket"][algo]
        for algo in KERNELS
    }

    lines = [
        f"Fig. 10 R-MAT TC (scale {SCALE}, serial) — bucketed vs per-row",
        f"{'kernel':8} {'perrow s':>10} {'bucket s':>10} {'speedup':>8}",
    ]
    for algo in KERNELS:
        lines.append(
            f"{algo:8} {medians['perrow'][algo]:10.4f} "
            f"{medians['bucket'][algo]:10.4f} {per_kernel[algo]:7.2f}x"
        )
    lines.append(
        f"{'TOTAL':8} {perrow_total:10.4f} {bucket_total:10.4f} "
        f"{aggregate:7.2f}x"
    )
    save_result(
        "\n".join(lines),
        data={
            "scale": SCALE,
            "medians_s": medians,
            "per_kernel_speedup": per_kernel,
            "aggregate_speedup": aggregate,
        },
        title="Batched-tier A/B on Fig. 10 TC",
    )

    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"aggregate bucketed speedup {aggregate:.2f}x < "
        f"{MIN_AGGREGATE_SPEEDUP}x (per kernel: {per_kernel})"
    )
    # the hash kernel is where per-row dispatch really hurts; larger
    # factor expected, reported above, deliberately not asserted
    assert per_kernel["hash"] >= aggregate * 0.9


def test_bucketed_tier_never_charges_differently(benchmark):
    """Counters are identical, so the A/B measures time and nothing else."""
    from repro.machine import OpCounter

    low = rmat(10, seed=1).pattern().tril(-1)

    def run():
        out = {}
        for tier in ("perrow", "bucket"):
            c = OpCounter()
            masked_spgemm(low, low, low, algo="hash", batch=tier,
                          semiring=PLUS_PAIR, counter=c)
            out[tier] = c.as_dict()
        return out

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counters["perrow"] == counters["bucket"]
