"""Benchmark — how much work does the mask save, per suite graph?

The Figure-1 motivation quantified: for the triangle-counting product on
every suite graph, compare ``flops(AB)`` (what multiply-then-mask pays)
against the useful flops (what a masked algorithm pays), and the output
size against the mask size (how tight the 1P mask bound is).  Prints a
table EXPERIMENTS.md summarises and asserts the saving is universal.
"""

from repro.apps import triangle_count_detail
from repro.bench import render_table
from repro.graphs import load, suite_names
from repro.machine import OpCounter, total_flops


def test_mask_effectiveness_table(benchmark, save_result):
    def run():
        rows = []
        for name in suite_names():
            g = load(name)
            log = []
            res = triangle_count_detail(g, algo="msa", call_log=log)
            low, _, _, _ = log[0]
            unmasked = total_flops(low, low)
            useful = res.counter.flops
            out_nnz = res.counter.output_nnz
            rows.append(
                (
                    name,
                    low.nnz,
                    unmasked,
                    useful,
                    unmasked / max(1, useful),
                    out_nnz / max(1, low.nnz),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(render_table(
        ["graph", "mask nnz", "flops(LL)", "useful", "saving", "out/mask"],
        [
            (n, m, f, u, f"{s:.1f}x", f"{o:.2f}")
            for n, m, f, u, s, o in rows
        ],
        title="Mask effectiveness on TC (L .* (L@L)) across the suite",
    ))

    # the mask always saves work on TC, usually a lot
    savings = [s for *_, s, _ in rows]
    assert all(s >= 1.0 for s in savings)
    assert sum(1 for s in savings if s >= 2.0) >= len(savings) // 2
    # the output never exceeds the mask (the 1P bound is valid everywhere)
    assert all(o <= 1.0 + 1e-12 for *_, o in rows)
