"""Figure 9 — Triangle Counting: our best schemes vs SuiteSparse:GraphBLAS
(SS:DOT, SS:SAXPY stand-ins).

Paper claim asserted: "all our algorithms outperform SS:GB algorithms in
almost all cases" — the SS:GB schemes win (or tie) at most a small fraction
of cases and rank below our best schemes.
"""

from repro.bench import fig09_tc_vs_ssgb, render_profile

from conftest import SCALE


def test_fig09_tc_vs_ssgb(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig09_tc_vs_ssgb(scale_factor=SCALE, mode="model"),
        rounds=1,
        iterations=1,
    )
    save_result(render_profile(
        prof, title="Figure 9 — TC: our schemes vs SS:GB (model, haswell)"
    ))

    ranking = prof.ranking()
    # our best scheme leads
    assert ranking[0] == "MSA-1P"
    # SS:GB wins almost nothing outright
    assert prof.fraction_best("SS:DOT") <= 0.1
    assert prof.fraction_best("SS:SAXPY") <= 0.15
    # and both rank below our top two schemes by profile area
    ours_top2 = [s for s in ranking if not s.startswith("SS:")][:2]
    for ss in ("SS:DOT", "SS:SAXPY"):
        assert ranking.index(ss) > max(ranking.index(o) for o in ours_top2)
