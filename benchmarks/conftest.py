"""Shared infrastructure for the figure-regeneration benchmarks.

Every ``test_figXX_*`` file regenerates one evaluation figure of the paper:
it runs the experiment (model mode by default — see DESIGN.md on why the
machine model carries the paper's *shape* claims), renders the same rows /
series / grids the paper plots, writes them to ``benchmarks/results/`` and
asserts the paper's qualitative findings.

Artifacts: every figure writes a ``<test-stem>.txt`` (the rendered ASCII
table) and, when the test passes structured ``data``, a ``<test-stem>.json``
twin through :func:`repro.bench.reporting.save_figure_json` — one shared
JSON emitter instead of per-file ``json.dumps`` recipes, so every results
file carries the same ``{"title", "rendered", "data"}`` envelope.

Environment knobs:

* ``REPRO_MEASURED=1`` — additionally run the wall-clock (measured) variant
  of the profile experiments on the vectorized schemes.
* ``REPRO_SCALE=<float>`` — scale factor for the suite graph sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

MEASURED = os.environ.get("REPRO_MEASURED", "0") == "1"
SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir, request):
    """Write a rendered figure to benchmarks/results/<test-stem>.txt (and,
    given structured ``data``, a .json twin) and echo it to stdout."""
    from repro.bench.reporting import save_figure_json

    def _save(text: str, suffix: str = "", data=None, title: str = "") -> None:
        stem = request.node.name.replace("/", "_").replace("[", "_").replace("]", "")
        path = results_dir / f"{stem}{suffix}.txt"
        path.write_text(text + "\n")
        if data is not None:
            save_figure_json(
                results_dir / f"{stem}{suffix}.json", data,
                title=title or stem, rendered=text,
            )
        print()
        print(text)

    return _save


def require_measured():
    if not MEASURED:
        pytest.skip("measured mode disabled (set REPRO_MEASURED=1)")
