"""Ablation — validating the cost model against exact cache simulation.

The interpolated working-set cost function in the cost model carries the
paper's cache claims (MSA vs Hash crossover, Haswell-vs-KNL differences).
This bench cross-checks it against ground truth: exact per-access traces
of the kernels (Section-4.2 access patterns + true accumulator layouts)
replayed through the set-associative LRU simulator.

Asserted agreements:

* the MSA-vs-Hash *ordering* flips with matrix size in both the model and
  the exact simulation, at a comparable crossover point;
* miss rates grow monotonically as the cache shrinks;
* Inner's traffic is mask-proportional while push traffic is
  flops-proportional (the Section 4.1/4.2 formulas).
"""

import numpy as np

from repro.graphs import erdos_renyi
from repro.machine import (
    HASWELL,
    RowCostModel,
    build_trace,
    pull_traffic_words,
    replay_miss_rate,
)


def test_msa_hash_crossover_model_vs_simulation(benchmark, save_result):
    cache = 64 * 1024

    def run():
        rows = []
        for n in (512, 8192):
            a = erdos_renyi(n, n, 8, seed=1)
            b = erdos_renyi(n, n, 8, seed=2)
            m = erdos_renyi(n, n, 8, seed=3)
            sim = {
                algo: replay_miss_rate(a, b, m, algo, cache_bytes=cache)[0]
                for algo in ("msa", "hash")
            }
            import dataclasses

            model_machine = dataclasses.replace(
                HASWELL, private_cache_bytes=cache, llc_bytes=0
            )
            model = RowCostModel(a, b, m, model_machine)
            mod = {
                algo: model.estimate(algo).total_cycles
                for algo in ("msa", "hash")
            }
            rows.append((n, sim, mod))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Cache-model validation (64KB cache):",
             "  n      sim miss (msa/hash)    model cycles (msa/hash)"]
    for n, sim, mod in rows:
        lines.append(
            f"  {n:<6} {sim['msa']:.3f}/{sim['hash']:.3f}"
            f"            {mod['msa']:.3g}/{mod['hash']:.3g}"
        )
    save_result("\n".join(lines))

    (n1, sim1, mod1), (n2, sim2, mod2) = rows
    # small matrix: MSA <= Hash in both views
    assert sim1["msa"] < sim1["hash"]
    assert mod1["msa"] < mod1["hash"]
    # large matrix: ordering flips in both views
    assert sim2["msa"] > sim2["hash"]
    assert mod2["msa"] > mod2["hash"]


def test_miss_rate_monotone_in_cache_size(benchmark, save_result):
    a = erdos_renyi(1024, 1024, 8, seed=4)
    b = erdos_renyi(1024, 1024, 8, seed=5)
    m = erdos_renyi(1024, 1024, 8, seed=6)

    def run():
        return [
            replay_miss_rate(a, b, m, "msa", cache_bytes=cb)[0]
            for cb in (1 << 12, 1 << 15, 1 << 18, 1 << 22)
        ]

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("MSA miss rate vs cache size (4KB..4MB): "
                + ", ".join(f"{r:.3f}" for r in rates))
    for lo, hi in zip(rates[1:], rates[:-1]):
        assert lo <= hi + 1e-9


def test_traffic_proportionality(benchmark, save_result):
    """Inner's trace volume tracks nnz(M)(1 + nnz(B)/n) (Section 4.1);
    push volume tracks flops(AB) (Section 4.2)."""

    def run():
        n = 512
        b = erdos_renyi(n, n, 8, seed=7)
        a = erdos_renyi(n, n, 8, seed=8)
        out = {}
        for dm in (2, 8, 32):
            m = erdos_renyi(n, n, dm, seed=9)
            t = build_trace(a, b, m, "inner").n_accesses()
            out[dm] = (t, pull_traffic_words(a, b, m))
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [t / w for (t, w) in res.values()]
    save_result(
        "Inner trace accesses vs Section-4.1 words: "
        + ", ".join(f"d_m={k}: {t}/{w:.0f}" for k, (t, w) in res.items())
    )
    # trace volume proportional to the analytic formula within 3x across a
    # 16x mask-density sweep
    assert max(ratios) / min(ratios) < 3.0
