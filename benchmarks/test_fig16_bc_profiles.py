"""Figure 16 — Betweenness Centrality performance profiles vs SS:GB.

The paper runs the schemes that support complemented masks and are not
prohibitively slow: our MSA/Hash (1P/2P) and SS:SAXPY (MCA has no
complement; Heap/Inner/SS:DOT were excluded as too slow).  High-diameter
suite graphs are excluded like the paper excludes its three long-running
graphs (see repro.bench.experiments.BC_SUITE_EXCLUDE).

Paper claim asserted: **MSA-1P obtains the best performance in ALL test
instances**, and 1P again beats 2P.
"""

import os

from repro.bench import fig16_bc_profiles, render_profile

from conftest import SCALE

BATCH = int(os.environ.get("REPRO_BC_BATCH", "32"))


def test_fig16_bc_profiles(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig16_bc_profiles(scale_factor=SCALE, batch_size=BATCH,
                                  mode="model"),
        rounds=1,
        iterations=1,
    )
    save_result(render_profile(
        prof, title=f"Figure 16 — BC profiles (model, haswell, batch {BATCH})"
    ))

    # the paper's headline: MSA-1P best in every single instance
    assert prof.fraction_best("MSA-1P") == 1.0
    assert prof.ranking()[0] == "MSA-1P"

    # 1P beats 2P
    assert prof.area("MSA-1P") >= prof.area("MSA-2P")
    assert prof.area("Hash-1P") >= prof.area("Hash-2P")

    # evaluated scheme set matches the paper's BC lineup
    assert set(prof.schemes) == {
        "MSA-1P", "MSA-2P", "Hash-1P", "Hash-2P", "SS:SAXPY",
    }


def test_bc_stage_split_trends_similar(benchmark, save_result):
    """Paper Sec. 8.4: "We benchmarked the Masked SpGEMM in forward and
    backward stages separately, but the trends were similar."  Model both
    stages separately and assert MSA-1P leads each."""
    from repro.bench import bc_cases, modeled_seconds, scheme_by_name
    from repro.graphs import rmat

    def run():
        g = rmat(10, seed=9)
        calls = bc_cases({"g": g}, batch_size=BATCH)["g"]
        fwd = [c for c in calls if c[3]]       # complemented = forward
        bwd = [c for c in calls if not c[3]]   # plain = backward
        out = {}
        for stage, stage_calls in (("forward", fwd), ("backward", bwd)):
            out[stage] = {
                name: modeled_seconds(scheme_by_name(name), stage_calls)
                for name in ("MSA-1P", "Hash-1P", "MSA-2P", "Hash-2P")
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["BC stage split (modeled seconds):"]
    for stage, times in res.items():
        ranked = sorted(times, key=times.get)
        lines.append(f"  {stage:8s}: " + " < ".join(ranked))
    save_result("\n".join(lines))

    for stage, times in res.items():
        assert min(times, key=times.get) == "MSA-1P", stage
