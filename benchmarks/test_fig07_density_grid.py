"""Figure 7 — the best-performing scheme as a function of input-matrix and
mask density (Erdős–Rényi, Haswell).

Paper claims asserted here:

* Inner wins when the mask is much sparser than the inputs.
* Heap/HeapDot win when the inputs are much sparser than the mask.
* MSA/Hash (the accumulator schemes) win the comparable-density middle.
"""

import pytest

from repro.bench import fig07_density_grid, render_grid
from repro.machine import HASWELL, KNL

DEGREES = (1, 2, 4, 8, 16, 32, 64)


@pytest.mark.parametrize("machine", [HASWELL, KNL], ids=["haswell", "knl"])
def test_fig07_density_grid(benchmark, machine, save_result):
    res = benchmark.pedantic(
        lambda: fig07_density_grid(n=4096, degrees=DEGREES, machine=machine),
        rounds=1,
        iterations=1,
    )
    title = f"Figure 7 — best scheme per density cell ({machine.name}, n={res.n})"
    save_result(
        render_grid(
            "input_deg",
            "mask_deg",
            res.input_degrees,
            res.mask_degrees,
            res.winners,
            title=title,
        ),
        data={
            "input_degrees": res.input_degrees,
            "mask_degrees": res.mask_degrees,
            "winners": res.winners,
            "times": res.times,
            "n": res.n,
            "machine": res.machine,
        },
        title=title,
    )

    w = res.winners
    # mask much sparser than inputs -> Inner
    assert w[(64, 1)] == "Inner-1P"
    assert w[(32, 1)] == "Inner-1P"
    assert w[(64, 2)] == "Inner-1P"
    # inputs much sparser than mask -> heap family
    assert w[(1, 64)] in ("Heap-1P", "HeapDot-1P")
    assert w[(1, 32)] in ("Heap-1P", "HeapDot-1P")
    # comparable density -> accumulator schemes
    assert w[(32, 32)] in ("MSA-1P", "Hash-1P", "MCA-1P")
    assert w[(64, 64)] in ("MSA-1P", "Hash-1P", "MCA-1P")
    # all three regimes appear
    kinds = res.winner_set()
    assert any(k.startswith("Inner") for k in kinds)
    assert any(k.startswith(("Heap", "HeapDot")) for k in kinds)
    assert any(k.startswith(("MSA", "Hash", "MCA")) for k in kinds)


def test_fig07_msa_to_hash_crossover_with_size(benchmark, save_result):
    """Section 8.1's size effect: at comparable density the dense MSA
    accumulator wins on small matrices and loses to Hash once the dense
    arrays overflow the private cache."""

    def run():
        from repro.graphs import erdos_renyi
        from repro.machine import RowCostModel

        out = {}
        for n in (1024, 1 << 19):
            a = erdos_renyi(n, n, 8, seed=1)
            m = erdos_renyi(n, n, 8, seed=2)
            model = RowCostModel(a, a, m, HASWELL)
            out[n] = {
                "msa": model.estimate("msa").total_cycles,
                "hash": model.estimate("hash").total_cycles,
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    small, large = res[1024], res[1 << 19]
    save_result(
        "MSA/Hash crossover:\n"
        f"  n=1024:    msa={small['msa']:.3g}  hash={small['hash']:.3g}\n"
        f"  n=524288: msa={large['msa']:.3g}  hash={large['hash']:.3g}"
    )
    assert small["msa"] < small["hash"]
    assert large["hash"] < large["msa"]
