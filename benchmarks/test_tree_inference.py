"""Benchmark — masked SpGEMM for label-tree inference (paper intro, citing
Etter et al. [21]).

Asserts the mechanism: beam-search flops grow with beam width but stay a
small fraction of exhaustive scoring, while recall grows with the beam.
Also wall-clock-times the masked inference kernel.
"""

import numpy as np
import pytest

from repro.apps import (
    beam_search_inference,
    exhaustive_inference,
    random_label_tree,
)
from repro.graphs import erdos_renyi


@pytest.fixture(scope="module")
def setup():
    tree = random_label_tree(4000, branching=8, depth=4, nnz_per_node=16,
                             seed=1)
    x = erdos_renyi(48, 4000, 30, seed=2)
    return tree, x


def test_flops_vs_recall_sweep(benchmark, setup, save_result):
    tree, x = setup

    def run():
        exact = exhaustive_inference(tree, x, top_k=5)
        rows = []
        for beam in (1, 4, 16):
            res = beam_search_inference(tree, x, beam_width=beam, top_k=5,
                                        algo="mca")
            recall = float(np.isin(res.labels, exact.labels).mean())
            rows.append((beam, res.masked_flops, recall))
        return exact.counter.flops, rows

    exact_flops, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Tree inference ({tree.n_labels} labels, batch {x.nrows}): "
             f"exhaustive = {exact_flops} flops"]
    for beam, fl, rec in rows:
        lines.append(f"  beam {beam:>3}: {fl:>7} flops "
                     f"({exact_flops / max(1, fl):5.1f}x saving), "
                     f"recall@5 = {rec:.2%}")
    save_result("\n".join(lines))

    # flops grow with beam width but never exceed a fraction of exhaustive
    flops = [fl for _, fl, _ in rows]
    assert flops == sorted(flops)
    assert flops[-1] < 0.5 * exact_flops
    # recall improves from the narrowest to the widest beam
    assert rows[-1][2] > rows[0][2]


def test_inference_kernel_wallclock(benchmark, setup):
    tree, x = setup
    res = benchmark(
        lambda: beam_search_inference(tree, x, beam_width=4, top_k=5)
    )
    assert res.labels.shape == (48, 5)
