"""Figure 15 — Betweenness Centrality MTEPS vs R-MAT scale (paper: batch
512, scales 8-20; laptop default batch 48, scales 6-10).

Paper claims asserted:

* push-based schemes (MSA-1P, Hash-1P, SS:SAXPY) raise their MTEPS rate as
  the input grows;
* SS:DOT is crippled by the dense BC masks + per-call transpose.
"""

import os

from repro.bench import fig15_bc_rmat_scaling, render_series
from repro.machine import HASWELL

MAX_SCALE = int(os.environ.get("REPRO_RMAT_MAX", "10"))
SCALES = tuple(range(6, MAX_SCALE + 1))
BATCH = int(os.environ.get("REPRO_BC_BATCH", "48"))


def test_fig15_bc_rmat_scaling(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig15_bc_rmat_scaling(
            scales=SCALES, batch_size=BATCH, machine=HASWELL
        ),
        rounds=1,
        iterations=1,
    )
    save_result(render_series(
        "scale", res.xs, res.series,
        title=f"Figure 15 — BC MTEPS vs R-MAT scale (haswell, batch {BATCH})",
    ))

    # push-based schemes improve with scale
    for name in ("MSA-1P", "Hash-1P", "SS:SAXPY"):
        curve = res.series[name]
        assert max(curve) > curve[0], name

    # MSA-1P is the best scheme at every scale
    for i in range(len(SCALES)):
        best = max(res.series, key=lambda s: res.series[s][i])
        assert best == "MSA-1P", (SCALES[i], best)

    # SS:DOT trails the push-based schemes badly (dense masks + transpose)
    assert max(res.series["SS:DOT"]) < 0.7 * max(res.series["MSA-1P"])
