"""Ablation — the ESC (expand-sort-compress) extension algorithm.

ESC replaces the random-access accumulator with a sort (the GPU-style
SpGEMM family of the paper's ref [28]).  This bench positions it against
the paper's accumulator schemes, both in the model and in wall clock:

* the masked filter must save ESC the same work the accumulators save
  (flops counted = useful flops only);
* wall clock: ESC's fully-streaming kernel is competitive with the
  accumulator kernels on this NumPy substrate (sorting is what NumPy is
  good at), and clearly beats the unmasked sort baseline.
"""

import time

from repro.core import masked_spgemm, masked_spgemm_multiply_then_mask
from repro.graphs import erdos_renyi
from repro.machine import HASWELL, OpCounter, RowCostModel, total_flops, useful_flops_per_row


def test_esc_masked_filter_saves_work(benchmark, save_result):
    a = erdos_renyi(1024, 1024, 12, seed=1)
    b = erdos_renyi(1024, 1024, 12, seed=2)
    m = erdos_renyi(1024, 1024, 3, seed=3)

    def run():
        c = OpCounter()
        masked_spgemm(a, b, m, algo="esc", counter=c)
        return c

    c = benchmark.pedantic(run, rounds=1, iterations=1)
    unmasked = total_flops(a, b)
    useful = int(useful_flops_per_row(a, b, m).sum())
    save_result(
        f"ESC work: expanded {c.accum_inserts} products, sorted only "
        f"{c.flops} survivors (useful = {useful}; unmasked = {unmasked})"
    )
    assert c.accum_inserts == unmasked  # expansion sees everything...
    assert c.flops == useful  # ...but only survivors are sorted/multiplied
    assert c.flops < 0.2 * unmasked


def test_esc_wallclock_vs_accumulators(benchmark, save_result):
    n = 16000
    a = erdos_renyi(n, n, 10, seed=4)
    b = erdos_renyi(n, n, 10, seed=5)
    m = erdos_renyi(n, n, 6, seed=6)

    def timed(algo):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            masked_spgemm(a, b, m, algo=algo)
            best = min(best, time.perf_counter() - t0)
        return best

    def run():
        return {algo: timed(algo) for algo in ("esc", "msa", "hash", "mca")}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    naive_t0 = time.perf_counter()
    masked_spgemm_multiply_then_mask(a, b, m)
    naive = time.perf_counter() - naive_t0

    lines = ["ESC wall-clock vs accumulator kernels:"]
    for k, v in sorted(times.items(), key=lambda kv: kv[1]):
        lines.append(f"  {k:5s} {v * 1e3:8.1f} ms")
    lines.append(f"  multiply-then-mask {naive * 1e3:8.1f} ms")
    save_result("\n".join(lines))

    # ESC beats the unmasked baseline and stays within 3x of the best
    # accumulator kernel on this substrate
    assert times["esc"] < naive
    assert times["esc"] < 3.0 * min(times.values())


def test_esc_model_position(benchmark, save_result):
    """In the model, ESC's streaming profile makes it insensitive to the
    accumulator working set: unlike MSA it does not degrade as n grows at
    fixed degrees."""

    def run():
        out = {}
        for n in (2048, 1 << 18):
            a = erdos_renyi(n, n, 8, seed=7)
            m = erdos_renyi(n, n, 8, seed=8)
            model = RowCostModel(a, a, m, HASWELL)
            per_flop = {}
            fl = max(1.0, float(total_flops(a, a)))
            for algo in ("esc", "msa"):
                per_flop[algo] = model.estimate(algo).total_cycles / fl
            out[n] = per_flop
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    small, large = res[2048], res[1 << 18]
    save_result(
        "ESC model position (cycles/flop): "
        f"n=2048 esc={small['esc']:.2f} msa={small['msa']:.2f}; "
        f"n=262144 esc={large['esc']:.2f} msa={large['msa']:.2f}"
    )
    # MSA's cycles/flop degrade far more with n than ESC's
    msa_growth = large["msa"] / small["msa"]
    esc_growth = large["esc"] / small["esc"]
    assert msa_growth > esc_growth
