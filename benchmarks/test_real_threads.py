"""Benchmark — the real thread-pool driver under the GIL (honesty check).

DESIGN.md documents that this container cannot reproduce thread scaling in
wall clock (single core + GIL); the scaling *figures* use the makespan
simulator instead.  This bench keeps that claim honest by actually
measuring the thread driver:

* results are identical at every thread count (determinism),
* the measured "speedup" is recorded — expected ~1x here; on a multicore
  host with NumPy releasing the GIL inside kernels it would exceed 1 —
  and asserted only to not collapse (no pathological slowdown).
"""

import os
import time

from repro.graphs import erdos_renyi
from repro.parallel import parallel_masked_spgemm


def test_thread_driver_scaling_honesty(benchmark, save_result):
    n = 8000
    a = erdos_renyi(n, n, 10, seed=1)
    b = erdos_renyi(n, n, 10, seed=2)
    m = erdos_renyi(n, n, 6, seed=3)

    def timed(threads):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            parallel_masked_spgemm(a, b, m, algo="msa", threads=threads)
            best = min(best, time.perf_counter() - t0)
        return best

    def run():
        return {p: timed(p) for p in (1, 2, 4)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    base = times[1]
    lines = [
        f"Real ThreadPoolExecutor scaling (cpu_count={os.cpu_count()}, "
        "GIL-bound container):"
    ]
    for p, t in times.items():
        lines.append(f"  threads={p}: {t * 1e3:8.1f} ms  "
                     f"speedup {base / t:4.2f}x")
    save_result("\n".join(lines))

    # honesty bound: threading may not help here, but it must not
    # catastrophically hurt (partition/merge overhead stays moderate)
    for p, t in times.items():
        assert t < 3.0 * base, (p, t, base)


def test_thread_driver_determinism(benchmark):
    n = 3000
    a = erdos_renyi(n, n, 8, seed=4)
    b = erdos_renyi(n, n, 8, seed=5)
    m = erdos_renyi(n, n, 5, seed=6)

    def run():
        r1 = parallel_masked_spgemm(a, b, m, threads=1)
        r4 = parallel_masked_spgemm(a, b, m, threads=4, partition="cyclic")
        r8 = parallel_masked_spgemm(a, b, m, threads=8, partition="balanced")
        return r1, r4, r8

    r1, r4, r8 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r1.equals(r4)
    assert r1.equals(r8)
