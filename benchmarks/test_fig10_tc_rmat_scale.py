"""Figure 10 — Triangle Counting GFLOPS vs R-MAT scale (paper: scales 8-20
on Haswell and KNL; laptop default 6-12, override with REPRO_RMAT_MAX).

Paper claims asserted:

* MSA-1P attains the highest GFLOPS rate on both machines.
* SS:GB is poor at small scales; SS:SAXPY closes on MSA-1P as scale grows.
"""

import os

import numpy as np
import pytest

from repro.bench import fig10_tc_rmat_scaling, render_series
from repro.machine import HASWELL, KNL

MAX_SCALE = int(os.environ.get("REPRO_RMAT_MAX", "12"))
SCALES = tuple(range(6, MAX_SCALE + 1))


@pytest.mark.parametrize("machine", [HASWELL, KNL], ids=["haswell", "knl"])
def test_fig10_tc_rmat_scaling(benchmark, machine, save_result):
    res = benchmark.pedantic(
        lambda: fig10_tc_rmat_scaling(scales=SCALES, machine=machine),
        rounds=1,
        iterations=1,
    )
    title = f"Figure 10 — TC GFLOPS vs R-MAT scale ({machine.name})"
    save_result(
        render_series("scale", res.xs, res.series, title=title),
        data={"xs": res.xs, "series": res.series, "machine": machine.name},
        title=title,
    )

    # MSA-1P attains the highest peak GFLOPS on Haswell; on KNL (no L3)
    # the pull-based Inner can tie it within a few percent at laptop
    # scales, so there we assert top-2.
    peaks = {name: max(curve) for name, curve in res.series.items()}
    order = sorted(peaks, key=peaks.get, reverse=True)
    if machine is HASWELL:
        assert order[0] == "MSA-1P"
    else:
        assert "MSA-1P" in order[:2]

    # SS:SAXPY closes the gap with MSA-1P as the input grows
    ratio_small = res.series["SS:SAXPY"][0] / res.series["MSA-1P"][0]
    ratio_large = max(
        s / m for s, m in zip(res.series["SS:SAXPY"][1:], res.series["MSA-1P"][1:])
    )
    assert ratio_large > ratio_small

    # every scheme's GFLOPS grows with scale (peak vs the smallest scale;
    # the largest laptop scale can dip when a single R-MAT hub row starts
    # to dominate the 68-thread makespan)
    for name, curve in res.series.items():
        assert max(curve) > curve[0], name


def test_fig10_absolute_throughput_sanity(benchmark, save_result):
    """Modeled GFLOPS stay within a plausible band for a 32-core node."""
    res = benchmark.pedantic(
        lambda: fig10_tc_rmat_scaling(scales=(8, 10), machine=HASWELL),
        rounds=1,
        iterations=1,
    )
    vals = np.array([v for c in res.series.values() for v in c])
    assert np.all(vals > 1e-3)
    assert np.all(vals < 500.0)
    save_result(f"GFLOPS band check: min={vals.min():.3g} max={vals.max():.3g}")
