"""Figure 12 — k-truss (k=5) performance profiles of our schemes over the
suite (paper drops its largest graph, wb-edu, for runtime; our suite sizes
make that unnecessary).

Paper claims asserted (Section 8.3):

* MSA performs best on Haswell.
* Inner performs fairly well (the mask sparsifies as pruning proceeds).
* 1P beats 2P; heap-based methods are noncompetitive.
"""

from repro.bench import fig12_ktruss_profiles, render_profile

from conftest import SCALE


def test_fig12_ktruss_profiles(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig12_ktruss_profiles(scale_factor=SCALE, k=5, mode="model"),
        rounds=1,
        iterations=1,
    )
    save_result(render_profile(
        prof, title="Figure 12 — k-truss performance profiles (model, haswell)"
    ))

    ranking = prof.ranking()
    assert ranking[0] == "MSA-1P"

    # Inner-1P is competitive: clearly above the heap schemes
    assert prof.area("Inner-1P") > prof.area("Heap-1P")
    assert prof.area("Inner-1P") > prof.area("HeapDot-2P")

    # 1P >= 2P per algorithm
    for algo in ("Inner", "MSA", "Hash", "MCA", "Heap", "HeapDot"):
        assert prof.area(f"{algo}-1P") >= prof.area(f"{algo}-2P"), algo

    # heap-based methods noncompetitive: never in the top third
    for heap_scheme in ("Heap-1P", "Heap-2P", "HeapDot-2P"):
        assert ranking.index(heap_scheme) >= 4


def test_fig12_mask_sparsifies_over_iterations(benchmark, save_result):
    """The mechanism behind Inner's k-truss showing: pruning makes the mask
    (current adjacency) sparser every iteration."""
    from repro.apps import ktruss
    from repro.graphs import load

    def run():
        g = load("rmat-11")
        return ktruss(g, 5).edges_per_iter

    edges = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("k-truss edge counts per iteration: " + str(edges))
    assert len(edges) >= 2
    assert all(b <= a for a, b in zip(edges, edges[1:]))
    assert edges[-1] < edges[0]
