"""Delta reuse A/B: incremental k-truss iterations vs full recomputes.

The tentpole claim of the incremental engine (``docs/incremental.md``),
asserted end to end on the Fig. 10 R-MAT case:

* a sessioned k-truss with ``delta="auto"`` is **bit-for-bit identical**
  to the plain full-recompute run (always asserted, any machine), and
* a *late* iteration — a handful of edges pruned from a scale-10 R-MAT
  adjacency — runs **at least 2x faster** through the delta patch than
  through a full sessioned recompute of the same product.  The speedup
  assertion is gated on ``cpu_count >= 4`` like the session-reuse A/B:
  tiny machines time too noisily to hold a ratio.

Both arms share every other knob: the same session machinery, the same
plan cache, the same operands.  The measured contrast is purely "recompute
the dirty rows" vs "recompute every row" — the per-iteration work the
``rows_recomputed`` counter certifies.

The late iteration is synthesised by alternating between the adjacency
and a copy with a few tail (low-degree) edges removed, so *every* timed
call is a small-delta patch against the previous call's state — exactly
the shape of a k-truss iteration near its fixed point.  Tail edges matter:
R-MAT hub columns fan a delta out to most rows, which is the fallback
regime, not the patch regime (``docs/incremental.md``).

Each test writes a ``.json`` twin carrying the timings and the delta
counters so a results directory documents the saved work, not just the
ratio.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.apps import ktruss
from repro.core import masked_spgemm
from repro.engine import ExecutionSession
from repro.graphs import rmat
from repro.machine import OpCounter
from repro.parallel import shutdown_pool
from repro.sparse import CSR

MANY_CORES = (os.cpu_count() or 1) >= 4

REPEATS = 6


def _drop_tail_edges(g: CSR, count: int) -> CSR:
    """Remove the last stored entry of the ``count`` highest-index
    nonempty rows — a small structural delta away from R-MAT hubs."""
    rows = np.flatnonzero(np.diff(g.indptr) > 0)[-count:]
    keep = np.ones(g.nnz, dtype=bool)
    for r in rows:
        keep[int(g.indptr[r + 1]) - 1] = False
    removed = np.cumsum(~keep)
    indptr = g.indptr.copy()
    indptr[1:] = g.indptr[1:] - removed[np.maximum(g.indptr[1:] - 1, 0)]
    return CSR(g.shape, indptr, g.indices[keep], g.data[keep],
               sorted_indices=True)


def _ab_timing(g: CSR, g2: CSR, repeats: int = REPEATS):
    """(best_full_s, best_delta_s, delta_counter, full_res, delta_res).

    Both arms warm a session on ``g`` then alternate ``g2``/``g`` so
    every timed call changes the operands by the same small edge set.
    The delta arm patches; the full arm recomputes every row.
    """
    ops = [g2 if i % 2 == 0 else g for i in range(repeats)]

    full_best, full_res = float("inf"), None
    with ExecutionSession() as sess:
        masked_spgemm(g, g, g, algo="auto", session=sess)
        for op in ops:
            t0 = time.perf_counter()
            r = masked_spgemm(op, op, op, algo="auto", session=sess)
            full_best = min(full_best, time.perf_counter() - t0)
            if op is g2:
                full_res = r

    counter = OpCounter()
    delta_best, delta_res = float("inf"), None
    with ExecutionSession() as sess:
        masked_spgemm(g, g, g, algo="auto", session=sess, delta="auto")
        for op in ops:
            t0 = time.perf_counter()
            r = masked_spgemm(op, op, op, algo="auto", session=sess,
                              delta="auto", counter=counter)
            delta_best = min(delta_best, time.perf_counter() - t0)
            if op is g2:
                delta_res = r
    return full_best, delta_best, counter, full_res, delta_res


def test_ktruss_delta_identical(benchmark, save_result):
    """Sessioned ``delta="auto"`` k-truss == plain k-truss, bit for bit —
    the contract that makes the speedup below safe to take."""
    g = rmat(10, seed=13)
    counter = OpCounter()

    def run():
        base = ktruss(g, 5, algo="auto", session=False, delta=None)
        with ExecutionSession() as sess:
            res = ktruss(g, 5, algo="auto", session=sess, delta="auto",
                         counter=counter)
        return base, res

    base, res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(res.truss.to_dense(), base.truss.to_dense())
    assert res.iterations == base.iterations
    total = res.iterations * g.nrows
    data = {
        "graph": "rmat-10", "k": 5, "iterations": res.iterations,
        "rows_recomputed": counter.rows_recomputed,
        "rows_patched": counter.rows_patched,
        "delta_fallbacks": counter.delta_fallbacks,
        "rows_total": total,
    }
    save_result(
        f"k-truss (k=5, rmat-10) delta=auto vs plain: identical over "
        f"{res.iterations} iterations; rows recomputed "
        f"{counter.rows_recomputed}/{total}, patched {counter.rows_patched}, "
        f"fallbacks {counter.delta_fallbacks}",
        data=data, title="delta reuse — k-truss identity",
    )


def test_ktruss_delta_late_iteration_speedup(benchmark, save_result):
    """A late k-truss iteration (4 tail edges pruned on the Fig. 10
    scale-10 R-MAT) through the delta patch vs a full sessioned
    recompute: >= 2x, gated on ``cpu_count >= 4``."""
    g = rmat(10, seed=13)
    g2 = _drop_tail_edges(g, 4)

    try:
        full_s, delta_s, counter, full_res, delta_res = benchmark.pedantic(
            lambda: _ab_timing(g, g2), rounds=1, iterations=1
        )
    finally:
        shutdown_pool()

    # bit-identical always, speedup only where timing is trustworthy
    assert np.array_equal(delta_res.indptr, full_res.indptr)
    assert np.array_equal(delta_res.indices, full_res.indices)
    assert np.array_equal(delta_res.data, full_res.data)
    assert counter.delta_fallbacks == 0
    assert counter.rows_patched > 0
    # every timed delta call recomputed a small fraction of the rows
    assert counter.rows_recomputed < REPEATS * g.nrows // 2

    speedup = full_s / delta_s if delta_s > 0 else float("inf")
    data = {
        "graph": "rmat-10", "edges_changed": 4, "repeats": REPEATS,
        "full_best_s": full_s, "delta_best_s": delta_s, "speedup": speedup,
        "rows_recomputed": counter.rows_recomputed,
        "rows_patched": counter.rows_patched,
        "delta_fallbacks": counter.delta_fallbacks,
    }
    save_result(
        f"late k-truss iteration (rmat-10, 4 tail edges): full recompute "
        f"{full_s * 1e3:.2f} ms, delta patch {delta_s * 1e3:.2f} ms "
        f"({speedup:.1f}x); rows recomputed {counter.rows_recomputed} over "
        f"{REPEATS} calls of {g.nrows} rows",
        data=data, title="delta reuse — late-iteration speedup",
    )
    if MANY_CORES:
        assert speedup >= 2.0, (
            f"delta patch not >=2x faster: full {full_s:.4f}s vs "
            f"delta {delta_s:.4f}s"
        )
