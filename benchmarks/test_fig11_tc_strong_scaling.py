"""Figure 11 — Triangle Counting strong scaling (thread count sweep) on an
R-MAT graph; paper: scale 20, 1-32 threads on Haswell and 1-68 on KNL.

Paper claim asserted: "all algorithms scaling well in all cases" — our
schemes reach near-linear speedup at the full core count of each machine.
"""

import pytest

from repro.bench import fig11_tc_strong_scaling, render_series
from repro.machine import HASWELL, KNL

THREADS = {
    "haswell": [1, 2, 4, 8, 16, 32],
    "knl": [1, 2, 4, 8, 17, 34, 68],
}


@pytest.mark.parametrize("machine", [HASWELL, KNL], ids=["haswell", "knl"])
def test_fig11_tc_strong_scaling(benchmark, machine, save_result):
    res = benchmark.pedantic(
        lambda: fig11_tc_strong_scaling(
            scale=13, machine=machine, thread_counts=THREADS[machine.name]
        ),
        rounds=1,
        iterations=1,
    )
    title = f"Figure 11 — TC strong scaling, R-MAT scale 13 ({machine.name})"
    save_result(
        render_series("threads", res.xs, res.series, title=title, fmt="{:.2f}"),
        data={"xs": res.xs, "series": res.series, "machine": machine.name},
        title=title,
    )

    full = res.xs[-1]
    for name, curve in res.series.items():
        # speedup starts at 1 and never exceeds the thread count
        assert curve[0] == pytest.approx(1.0)
        for p, s in zip(res.xs, curve):
            assert s <= p + 1e-6
        # monotone non-decreasing speedup
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:])), name

    # our row-parallel schemes scale near-linearly to the full machine
    for ours in ("MSA-1P", "Hash-1P", "MCA-1P", "Inner-1P"):
        assert res.series[ours][-1] >= 0.7 * full, (ours, res.series[ours][-1])

    # SS:DOT is held back by its serial per-call transpose (Amdahl)
    assert res.series["SS:DOT"][-1] < res.series["MSA-1P"][-1]


def test_fig11_schedule_ablation(benchmark, save_result):
    """Ablation: OpenMP-style scheduling policies on the skewed R-MAT row
    profile — dynamic/guided must beat plain static blocks."""
    from repro.bench import tc_cases
    from repro.graphs import rmat
    from repro.machine import RowCostModel, simulate_makespan

    def run():
        g = rmat(12, seed=15)
        calls = tc_cases({"g": g})["g"]
        a, b, m, _ = calls[0]
        est = RowCostModel(a, b, m, HASWELL).estimate("msa")
        out = {}
        for sched in ("static", "cyclic", "dynamic", "guided"):
            out[sched] = simulate_makespan(
                est.row_cycles, 32, schedule=sched, chunk=4
            )
        return out

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Scheduling ablation (makespan cycles, 32 threads):"]
    for k, v in sorted(spans.items(), key=lambda kv: kv[1]):
        lines.append(f"  {k:8s} {v:.3e}")
    save_result("\n".join(lines))
    assert spans["dynamic"] <= spans["static"] + 1e-9
    assert spans["guided"] <= spans["static"] + 1e-9
