"""Figure 13 — k-truss: our best schemes vs SS:GB.

Paper claim asserted: our MSA-1P (Haswell's winner) performs significantly
better than both SS:GB schemes.
"""

from repro.bench import fig13_ktruss_vs_ssgb, render_profile

from conftest import SCALE


def test_fig13_ktruss_vs_ssgb(benchmark, save_result):
    prof = benchmark.pedantic(
        lambda: fig13_ktruss_vs_ssgb(scale_factor=SCALE, k=5, mode="model"),
        rounds=1,
        iterations=1,
    )
    save_result(render_profile(
        prof, title="Figure 13 — k-truss: ours vs SS:GB (model, haswell)"
    ))

    ranking = prof.ranking()
    assert ranking[0] == "MSA-1P"
    # SS:GB schemes below our best two
    ours_top2 = [s for s in ranking if not s.startswith("SS:")][:2]
    for ss in ("SS:DOT", "SS:SAXPY"):
        assert ranking.index(ss) > max(ranking.index(o) for o in ours_top2), ss
    # our winner dominates: best or tied-best in the large majority of cases
    assert prof.fraction_best("MSA-1P") >= 0.5
