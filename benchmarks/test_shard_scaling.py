"""Benchmark — sharded vs unsharded masked SpGEMM wall-clock scaling.

The shard grid (``docs/sharding.md``) tiles the R-MAT triangle-counting
SpGEMM (``L .* (L @ L)``, the paper's TC workload) into DCSR row blocks ×
DCSC column panels and dispatches one task per nonempty mask cell.  This
bench runs the same TC product sharded and unsharded at 1/2/4/8 workers
on the thread and process backends and records the results as JSON in
``benchmarks/results/``.

Honesty policy (same as test_backend_scaling.py): this container may be
single-core, where no decomposition can win in wall clock.  Timings are
recorded for inspection with only sanity bounds enforced; bitwise
equality between the sharded and unsharded outputs is asserted always —
that equivalence is the tentpole contract, the speed is the machine's
business.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import masked_spgemm
from repro.engine import plan
from repro.engine.executor import execute
from repro.graphs import rmat
from repro.parallel import active_segments, shutdown_pool
from repro.semiring import PLUS_PAIR

WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
GRID = (4, 4)


def _tc_operands(scale=10, seed=9):
    """Lower-triangular R-MAT adjacency: the TC masked-SpGEMM operand."""
    return rmat(scale, seed=seed).pattern().tril(-1)


def _timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_shard_scaling_rmat_tc(benchmark, results_dir, save_result):
    low = _tc_operands()

    def spgemm(backend, workers, shards):
        pl = plan(low, low, low, algo="msa", threads=workers, shards=shards)
        return execute(
            pl, low, low, low, backend=backend, semiring=PLUS_PAIR
        )

    def run():
        # warm the process pool once so spawn cost is not charged to the
        # per-call numbers (the persistent pool amortises it in real use)
        t0 = time.perf_counter()
        spgemm("process", max(WORKER_COUNTS), GRID)
        spawn_seconds = time.perf_counter() - t0
        times = {}
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                times[(backend, workers, "unsharded")] = _timed(
                    lambda: spgemm(backend, workers, None)
                )
                times[(backend, workers, "sharded")] = _timed(
                    lambda: spgemm(backend, workers, GRID)
                )
        return times, spawn_seconds

    times, spawn_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- bitwise equivalence: sharded == unsharded on every backend ---
    ref = masked_spgemm(low, low, low, algo="msa", semiring=PLUS_PAIR)
    for backend in BACKENDS:
        got = spgemm(backend, 2, GRID)
        assert got.shape == ref.shape, backend
        assert np.array_equal(got.indptr, ref.indptr), backend
        assert np.array_equal(got.indices, ref.indices), backend
        assert np.array_equal(got.data, ref.data), backend

    # the pruning story in numbers: how many grid cells actually dispatch
    grid_plan = plan(low, low, low, algo="msa", shards=GRID)
    census = [n for n in grid_plan.notes if "cells carry mask entries" in n]

    cpus = os.cpu_count() or 1
    base = times[("thread", 1, "unsharded")]
    record = {
        "workload": "rmat scale=10 triangle-count spgemm (msa, plus_pair)",
        "nnz": int(low.nnz),
        "grid": list(GRID),
        "cell_census": census[0] if census else "",
        "cpu_count": cpus,
        "process_pool_spawn_seconds": spawn_seconds,
        "runs": [
            {
                "backend": backend,
                "workers": workers,
                "mode": mode,
                "seconds": t,
                "speedup_vs_1thread": base / t,
            }
            for (backend, workers, mode), t in sorted(times.items())
        ],
    }
    lines = [f"Shard-grid scaling, R-MAT TC, grid {GRID} (cpu_count={cpus}):"]
    if census:
        lines.append(f"  {census[0]}")
    for (backend, workers, mode), t in sorted(times.items()):
        lines.append(
            f"  {backend:>7s} x{workers} {mode:>9s}: {t * 1e3:8.1f} ms  "
            f"({base / t:4.2f}x vs 1-thread unsharded)"
        )
    save_result("\n".join(lines), data=record,
                title="sharded vs unsharded masked SpGEMM scaling")

    # sanity bound: sharding may cost (it exists for memory/locality), but
    # must never catastrophically regress the same backend/worker count
    for backend in BACKENDS:
        for workers in WORKER_COUNTS:
            s = times[(backend, workers, "sharded")]
            u = times[(backend, workers, "unsharded")]
            assert s < 10.0 * u + 0.05, (backend, workers, s, u)

    shutdown_pool()
    assert active_segments() == ()
