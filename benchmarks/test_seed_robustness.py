"""Robustness — the paper-shape conclusions must not depend on the RNG seed.

Re-runs the two headline experiments (Figure 7's regime grid and Figure 8's
TC profile winner) under different seeds and asserts the same qualitative
structure every time.  This is the difference between "we found a seed
where the paper's claims hold" and "the claims hold".
"""

import pytest

from repro.bench import fig07_density_grid, tc_cases, run_cases, performance_profile
from repro.bench.runner import OUR_SCHEMES_1P
from repro.graphs import erdos_renyi_graph, rmat


@pytest.mark.parametrize("seed", [0, 1234, 98765])
def test_fig07_regimes_seed_invariant(benchmark, seed, save_result):
    res = benchmark.pedantic(
        lambda: fig07_density_grid(n=2048, degrees=(1, 4, 16, 64), seed=seed),
        rounds=1,
        iterations=1,
    )
    w = res.winners
    # pull region
    assert w[(64, 1)] == "Inner-1P", seed
    assert w[(16, 1)] == "Inner-1P", seed
    # heap region
    assert w[(1, 64)] in ("Heap-1P", "HeapDot-1P"), seed
    # accumulator region
    assert w[(64, 64)] in ("MSA-1P", "Hash-1P", "MCA-1P"), seed
    save_result(f"seed {seed}: regimes hold ({sorted(res.winner_set())})")


@pytest.mark.parametrize("seed", [7, 77, 777])
def test_tc_winner_seed_invariant(benchmark, seed, save_result):
    """MSA-1P tops the TC profile on a fresh random graph set at any seed."""

    def run():
        graphs = {
            f"er-{seed}": erdos_renyi_graph(3000, 10, seed=seed),
            f"er2-{seed}": erdos_renyi_graph(1500, 18, seed=seed + 1),
            f"rmat-{seed}": rmat(11, seed=seed),
            f"rmat2-{seed}": rmat(10, seed=seed + 2),
        }
        cases = tc_cases(graphs)
        times = run_cases(cases, OUR_SCHEMES_1P, mode="model")
        return performance_profile(times)

    prof = benchmark.pedantic(run, rounds=1, iterations=1)
    ranking = prof.ranking()
    save_result(f"seed {seed}: TC ranking {ranking[:3]}")
    # MSA-1P leads (or ties the lead) on every seed
    assert ranking[0] == "MSA-1P", (seed, ranking)
