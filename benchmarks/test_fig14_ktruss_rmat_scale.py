"""Figure 14 — k-truss GFLOPS vs R-MAT scale.

Paper claims asserted:

* pull-based schemes (Inner, SS:DOT) grow their GFLOPS rate strongly with
  scale — "algorithms deemed inefficient for plain SpGEMM can attain quite
  good performance when mask becomes part of the multiplication";
* push-based MSA-1P also grows on Haswell.
"""

import os

from repro.bench import fig14_ktruss_rmat_scaling, render_series
from repro.machine import HASWELL

MAX_SCALE = int(os.environ.get("REPRO_RMAT_MAX", "11"))
SCALES = tuple(range(6, MAX_SCALE + 1))


def test_fig14_ktruss_rmat_scaling(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig14_ktruss_rmat_scaling(scales=SCALES, k=5, machine=HASWELL),
        rounds=1,
        iterations=1,
    )
    save_result(render_series(
        "scale", res.xs, res.series,
        title="Figure 14 — k-truss GFLOPS vs R-MAT scale (haswell)",
    ))

    for name in ("Inner-1P", "SS:DOT", "MSA-1P"):
        curve = res.series[name]
        assert max(curve) > 1.5 * curve[0], name  # strong growth with scale

    # the pull-based schemes' growth factor is at least comparable to the
    # push-based hash scheme's (the paper's "pull attains better rates")
    def growth(name):
        c = res.series[name]
        return max(c) / c[0]

    assert growth("Inner-1P") >= growth("Hash-1P") * 0.8
    assert growth("SS:DOT") >= growth("Hash-1P") * 0.8
